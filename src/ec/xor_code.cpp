#include "ec/xor_code.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "ec/gf256.hpp"

#ifdef SDR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sdr::ec {

XorCode::XorCode(std::size_t k, std::size_t m) : k_(k), m_(m) {
  if (m == 0 || k < m) {
    throw std::invalid_argument("XorCode requires 1 <= m <= k");
  }
}

std::string XorCode::name() const {
  return "XOR(" + std::to_string(k_) + "," + std::to_string(m_) + ")";
}

void XorCode::encode(std::span<const std::uint8_t* const> data,
                     std::span<std::uint8_t* const> parity,
                     std::size_t block_len) const {
  assert(data.size() == k_ && parity.size() == m_);

  auto encode_parity = [&](std::size_t p) {
    std::uint8_t* out = parity[p];
    bool first = true;
    for (std::size_t j = p; j < k_; j += m_) {
      if (first) {
        std::memcpy(out, data[j], block_len);
        first = false;
      } else {
        Gf256::xor_acc(out, data[j], block_len);
      }
    }
    if (first) std::memset(out, 0, block_len);
  };

#ifdef SDR_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (long long p = 0; p < static_cast<long long>(m_); ++p) {
    encode_parity(static_cast<std::size_t>(p));
  }
#else
  for (std::size_t p = 0; p < m_; ++p) encode_parity(p);
#endif
}

bool XorCode::can_recover(const PresenceMap& present) const {
  assert(present.size() == k_ + m_);
  // Recoverable iff each modulo group misses at most one data block, and a
  // group missing a data block still has its parity block.
  for (std::size_t g = 0; g < m_; ++g) {
    std::size_t missing_data = 0;
    for (std::size_t j = g; j < k_; j += m_) {
      if (!present[j]) ++missing_data;
    }
    if (missing_data > 1) return false;
    if (missing_data == 1 && !present[k_ + g]) return false;
  }
  return true;
}

bool XorCode::decode(std::span<std::uint8_t* const> blocks,
                     const PresenceMap& present,
                     std::size_t block_len) const {
  assert(blocks.size() == k_ + m_ && present.size() == k_ + m_);
  if (!can_recover(present)) return false;

  for (std::size_t g = 0; g < m_; ++g) {
    std::size_t missing = k_ + m_;  // sentinel: none
    for (std::size_t j = g; j < k_; j += m_) {
      if (!present[j]) {
        missing = j;
        break;
      }
    }
    if (missing == k_ + m_) continue;

    // Rebuild the missing block as parity XOR all present group members.
    std::uint8_t* out = blocks[missing];
    std::memcpy(out, blocks[k_ + g], block_len);
    for (std::size_t j = g; j < k_; j += m_) {
      if (j != missing) Gf256::xor_acc(out, blocks[j], block_len);
    }
  }
  return true;
}

}  // namespace sdr::ec
