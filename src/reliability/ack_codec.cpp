#include "reliability/ack_codec.hpp"

#include <cstring>

namespace sdr::reliability {

namespace {

template <typename T>
void append(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
bool read(const std::uint8_t* data, std::size_t length, std::size_t& cursor,
          T* value) {
  if (cursor + sizeof(T) > length) return false;
  std::memcpy(value, data + cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_control(const ControlMessage& msg) {
  std::vector<std::uint8_t> out;
  encode_control(msg, out);
  return out;
}

void encode_control(const ControlMessage& msg, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(32 + msg.selective.size() * 8 + msg.indices.size() * 4);
  append<std::uint8_t>(out, static_cast<std::uint8_t>(msg.type));
  append<std::uint64_t>(out, msg.msg_number);
  append<std::uint32_t>(out, msg.cumulative);
  append<std::uint32_t>(out, msg.selective_base);
  append<std::uint16_t>(out, static_cast<std::uint16_t>(msg.selective.size()));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(msg.indices.size()));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(msg.payload.size()));
  for (std::uint64_t w : msg.selective) append<std::uint64_t>(out, w);
  for (std::uint32_t i : msg.indices) append<std::uint32_t>(out, i);
  if (!msg.payload.empty()) {
    const std::size_t at = out.size();
    out.resize(at + msg.payload.size());
    std::memcpy(out.data() + at, msg.payload.data(), msg.payload.size());
  }
}

std::optional<ControlMessage> decode_control(const std::uint8_t* data,
                                             std::size_t length) {
  ControlMessage msg;
  if (!decode_control(data, length, msg)) return std::nullopt;
  return msg;
}

bool decode_control(const std::uint8_t* data, std::size_t length,
                    ControlMessage& msg) {
  std::size_t cursor = 0;
  std::uint8_t type = 0;
  std::uint16_t n_words = 0;
  std::uint16_t n_indices = 0;
  std::uint16_t n_payload = 0;
  if (!read(data, length, cursor, &type) ||
      !read(data, length, cursor, &msg.msg_number) ||
      !read(data, length, cursor, &msg.cumulative) ||
      !read(data, length, cursor, &msg.selective_base) ||
      !read(data, length, cursor, &n_words) ||
      !read(data, length, cursor, &n_indices) ||
      !read(data, length, cursor, &n_payload)) {
    return false;
  }
  if (type < 1 || type > 6) return false;
  msg.type = static_cast<ControlType>(type);
  msg.selective.resize(n_words);
  for (std::uint16_t i = 0; i < n_words; ++i) {
    if (!read(data, length, cursor, &msg.selective[i])) return false;
  }
  msg.indices.resize(n_indices);
  for (std::uint16_t i = 0; i < n_indices; ++i) {
    if (!read(data, length, cursor, &msg.indices[i])) return false;
  }
  // assign/resize rather than fresh vectors: a reused ControlMessage keeps
  // its capacity, so steady-state decoding allocates nothing.
  if (n_payload > 0) {
    if (cursor + n_payload > length) return false;
    msg.payload.assign(data + cursor, data + cursor + n_payload);
    cursor += n_payload;
  } else {
    msg.payload.clear();
  }
  return true;
}

}  // namespace sdr::reliability
