// Deployment profile of a sender-receiver path, consumed by the executable
// reliability protocols (timeout computation) and the protocol tuner.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "model/link_params.hpp"

namespace sdr::reliability {

struct LinkProfile {
  double bandwidth_bps{400 * Gbps};
  double rtt_s{0.025};
  double p_drop_packet{1e-5};  // per-MTU-packet drop estimate
  std::size_t mtu{4096};
  std::size_t chunk_bytes{64 * KiB};

  double chunk_injection_s() const {
    return injection_time_s(chunk_bytes, bandwidth_bps);
  }

  /// Model-level view (chunk-granularity drop probability).
  model::LinkParams to_model() const;
};

}  // namespace sdr::reliability
