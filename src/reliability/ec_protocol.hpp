// Executable erasure-coding reliability over the SDR API (paper §4.1.2).
//
// Sender: splits the message into L data submessages of k chunks, encodes m
// parity chunks per submessage, and injects data (streaming sends, kept open
// so the fallback path can retransmit into the same buffers) followed by
// parity (one-shot sends — parity is never retransmitted). On a positive
// ACK the buffers are released; on an EC NACK the listed submessages switch
// to Selective Repeat.
//
// Receiver: posts L data receive buffers (regions of the application buffer
// — zero copy) and L parity scratch buffers. Chunk-bitmap events drive
// decodability checks; once every submessage is recoverable the missing
// data chunks are EC-decoded in place and a positive ACK is sent. A
// fallback timeout FTO = (M + M/R)*T_INJ + beta*RTT armed at the first
// received chunk triggers an EC NACK listing the failed submessages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "ec/codec.hpp"
#include "reliability/ack_codec.hpp"
#include "reliability/control_link.hpp"
#include "reliability/profile.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::reliability {

struct EcProtoConfig {
  std::size_t k{32};
  std::size_t m{8};
  /// FTO slack beyond injection, in RTTs (paper's beta = 0.5 alpha).
  double beta{0.5};
  /// Fallback Selective Repeat RTO.
  double fallback_rto_s{0.075};
  /// Fallback receiver ACK cadence.
  double fallback_ack_interval_s{0.005};
  /// Abort safety net (multiples of FTO); paper: "a global timeout is also
  /// set at message posting to prevent deadlock".
  double global_timeout_factor{50.0};
  std::size_t final_ack_repeats{3};
  /// Receiver-side CTS retry pace (see SrProtoConfig::cts_retry_s). Every
  /// data/parity submessage stream rides its own CTS datagram; a lost one
  /// silently downgrades the submessage to fallback recovery — or, when
  /// more than m streams of a submessage are wedged, to the global-timeout
  /// abort. When > 0, streams that have produced no packets get their CTS
  /// re-sent every cts_retry_s until data lands or the message completes.
  /// 0 keeps the paper's single-CTS handshake.
  double cts_retry_s{0.0};
};

struct EcSenderStats {
  std::uint64_t messages{0};
  std::uint64_t data_chunks_sent{0};
  std::uint64_t parity_chunks_sent{0};
  std::uint64_t fallback_retransmissions{0};
  std::uint64_t ec_nacks{0};
};

class EcSender {
 public:
  using DoneFn = std::function<void(const Status&)>;

  EcSender(sim::Simulator& simulator, core::Qp& qp, ControlLink& control,
           const LinkProfile& profile, const ec::ErasureCodec& codec,
           EcProtoConfig config);

  /// Message length must be a whole number of submessages
  /// (k * chunk_size); callers pad to this granularity.
  Status write(const std::uint8_t* data, std::size_t length, DoneFn done);

  const EcSenderStats& stats() const { return stats_; }

 private:
  struct MsgState {
    const std::uint8_t* data{nullptr};
    std::size_t length{0};
    std::size_t submessages{0};
    std::vector<core::SendHandle*> data_handles;    // streaming, kept open
    std::vector<core::SendHandle*> parity_handles;  // one-shot
    std::vector<std::uint8_t> parity;               // encoded parity buffer
    // Fallback SR state, indexed [submessage][chunk-in-submessage].
    std::vector<std::vector<sim::EventId>> timers;
    std::vector<Bitmap> acked;        // per-submessage chunk acks
    std::vector<bool> sub_done;
    std::size_t subs_pending_fallback{0};
    double write_at_s{-1.0};  // write() sim time (completion latency)
    DoneFn done;
  };

  void register_metrics();
  void on_control(const std::uint8_t* data, std::size_t length);
  void enter_fallback(MsgState& msg, std::uint64_t base,
                      const std::vector<std::uint32_t>& failed);
  void fallback_send(MsgState& msg, std::uint64_t base, std::size_t sub,
                     std::size_t chunk, bool retransmission);
  void arm_fallback_timer(std::uint64_t base, std::size_t sub,
                          std::size_t chunk);
  void apply_fallback_ack(MsgState& msg, std::uint64_t base, std::size_t sub,
                          const ControlMessage& ack);
  void finish(std::uint64_t base);
  void reap(core::SendHandle* handle);

  sim::Simulator& sim_;
  core::Qp& qp_;
  ControlLink& control_;
  LinkProfile profile_;
  const ec::ErasureCodec& codec_;
  EcProtoConfig config_;
  std::size_t chunk_bytes_;
  // Keyed by the base (first data submessage) SDR message number.
  std::unordered_map<std::uint64_t, MsgState> messages_;
  // Maps any data submessage msg_number -> base (for fallback ACK routing).
  std::unordered_map<std::uint64_t, std::uint64_t> sub_to_base_;
  EcSenderStats stats_;
  // Tail-latency rollup: write() -> positive EC ACK.
  telemetry::HistogramHandle msg_completion_hist_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

struct EcReceiverStats {
  std::uint64_t messages{0};
  std::uint64_t decoded_submessages{0};   // recovered via parity
  std::uint64_t clean_submessages{0};     // all data chunks arrived
  std::uint64_t fallback_submessages{0};  // needed SR retransmission
  std::uint64_t ec_nacks_sent{0};
  std::uint64_t ftos_fired{0};
};

class EcReceiver {
 public:
  using DoneFn = std::function<void(const Status&)>;

  EcReceiver(sim::Simulator& simulator, core::Qp& qp, ControlLink& control,
             const LinkProfile& profile, const ec::ErasureCodec& codec,
             EcProtoConfig config);

  /// Post `buffer` for the next incoming EC message. Length must be a whole
  /// number of submessages. Fires `done` once all data chunks are present
  /// or recovered (and all receives completed).
  Status expect(std::uint8_t* buffer, std::size_t length,
                const verbs::MemoryRegion* mr, DoneFn done);

  const EcReceiverStats& stats() const { return stats_; }

 private:
  struct MsgState {
    std::uint8_t* buffer{nullptr};
    std::size_t length{0};
    std::size_t submessages{0};
    std::vector<core::RecvHandle*> data_handles;
    std::vector<core::RecvHandle*> parity_handles;
    std::vector<std::uint8_t> parity_scratch;
    const verbs::MemoryRegion* parity_mr{nullptr};
    std::vector<bool> sub_recovered;
    /// Submessages already counted in fallback_submessages / NACKed once
    /// (refires re-list them on the wire but must not re-count).
    std::vector<bool> sub_nacked;
    std::size_t subs_recovered{0};
    double posted_at_s{-1.0};  // expect() sim time (completion latency)
    bool fto_armed{false};
    bool fallback{false};
    bool complete{false};
    sim::EventId fto_timer{};
    sim::EventId global_timer{};
    sim::EventId ack_timer{};
    DoneFn done;
  };

  void register_metrics();
  void on_chunk_event(const core::RecvEvent& event);
  void cts_tick(std::uint64_t base);
  bool submessage_recoverable(const MsgState& msg, std::size_t sub) const;
  bool try_recover(MsgState& msg, std::size_t sub);
  void check_message(MsgState& msg, std::uint64_t base);
  void arm_fto(MsgState& msg, std::uint64_t base);
  void on_fto(std::uint64_t base);
  void fallback_ack_tick(std::uint64_t base);
  void send_fallback_acks(MsgState& msg, std::uint64_t base);
  void complete(MsgState& msg, std::uint64_t base);

  sim::Simulator& sim_;
  core::Qp& qp_;
  ControlLink& control_;
  LinkProfile profile_;
  const ec::ErasureCodec& codec_;
  EcProtoConfig config_;
  std::size_t chunk_bytes_;
  std::unordered_map<std::uint64_t, MsgState> messages_;
  std::unordered_map<std::uint64_t, std::uint64_t> handle_to_base_;
  // Reused ACK/NACK encode scratch (same pattern as SrReceiver): the
  // control path allocates nothing in steady state.
  ControlMessage ctrl_scratch_;
  std::vector<std::uint8_t> wire_scratch_;
  EcReceiverStats stats_;
  // Tail-latency rollups: expect() -> submessage recovered / message done.
  telemetry::HistogramHandle chunk_completion_hist_;
  telemetry::HistogramHandle msg_completion_hist_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

}  // namespace sdr::reliability
