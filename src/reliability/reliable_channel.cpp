#include "reliability/reliable_channel.hpp"

#include <bit>
#include <cstring>

#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"

namespace sdr::reliability {

void ReliableChannel::Options::derive_timeouts() {
  const double rtt = profile.rtt_s;
  const bool nack = kind == Kind::kSrNack || kind == Kind::kAuto;
  sr.rto_s = (nack ? 1.5 : 3.0) * rtt;
  sr.nack_enabled = nack;
  sr.ack_interval_s = std::max(rtt / 16.0, profile.chunk_injection_s() * 8.0);
  sr.nack_holdoff_s = rtt;
  ec.fallback_rto_s = 3.0 * rtt;
  ec.fallback_ack_interval_s = sr.ack_interval_s;
  eager_rto_s = 1.5 * rtt;
}

ReliableChannel::ReliableChannel(sim::Simulator& simulator, verbs::Nic& src,
                                 verbs::Nic& dst, Options options)
    : sim_(simulator), options_(options) {
  src_ctx_ = std::make_unique<core::Context>(src, core::DevAttr{});
  dst_ctx_ = std::make_unique<core::Context>(dst, core::DevAttr{});
  src_qp_ = src_ctx_->create_qp(options_.attr);
  dst_qp_ = dst_ctx_->create_qp(options_.attr);
  src_qp_->connect(dst_qp_->info());
  dst_qp_->connect(src_qp_->info());

  src_control_ = std::make_unique<ControlLink>(src, options_.control_recv_buffers);
  dst_control_ = std::make_unique<ControlLink>(dst, options_.control_recv_buffers);
  src_control_->connect(dst.id(), dst_control_->qp_number());
  dst_control_->connect(src.id(), src_control_->qp_number());

  switch (options_.kind) {
    case Kind::kSrRto:
    case Kind::kSrNack:
    case Kind::kAuto:  // the SR arm; the EC arm is a nested channel below
      sr_sender_ = std::make_unique<SrSender>(sim_, *src_qp_, *src_control_,
                                              options_.profile, options_.sr);
      sr_receiver_ = std::make_unique<SrReceiver>(
          sim_, *dst_qp_, *dst_control_, options_.profile, options_.sr);
      break;
    case Kind::kEcMds:
      codec_ = std::make_unique<ec::ReedSolomon>(options_.ec.k, options_.ec.m);
      break;
    case Kind::kEcXor:
      codec_ = std::make_unique<ec::XorCode>(options_.ec.k, options_.ec.m);
      break;
  }
  if (options_.kind == Kind::kAuto) {
    Options ec_options = options_;
    ec_options.kind = Kind::kEcMds;
    ec_options.eager_threshold_bytes = 0;  // eager handled by this layer
    auto_ec_ = std::unique_ptr<ReliableChannel>(
        new ReliableChannel(simulator, src, dst, ec_options));
  }
  if (codec_) {
    ec_sender_ = std::make_unique<EcSender>(sim_, *src_qp_, *src_control_,
                                            options_.profile, *codec_,
                                            options_.ec);
    ec_receiver_ = std::make_unique<EcReceiver>(sim_, *dst_qp_, *dst_control_,
                                                options_.profile, *codec_,
                                                options_.ec);
  }

  if (options_.eager_threshold_bytes > 0) {
    // Interpose on both control links: eager data/acks are consumed here,
    // everything else forwarded to the protocol handler installed above.
    protocol_src_handler_ = src_control_->receiver();
    src_control_->set_receiver(
        [this](const std::uint8_t* d, std::size_t n) { on_src_control(d, n); });
    dst_control_->set_receiver(
        [this](const std::uint8_t* d, std::size_t n) { on_dst_control(d, n); });
  }
}

ReliableChannel::~ReliableChannel() = default;

Status ReliableChannel::send(const std::uint8_t* data, std::size_t length,
                             DoneFn done) {
  if (options_.eager_threshold_bytes > 0 &&
      length <= options_.eager_threshold_bytes) {
    return eager_send(data, length, std::move(done));
  }
  if (auto_ec_ && auto_use_ec(length)) {
    ++auto_ec_count_;
    return auto_ec_->send(data, length, std::move(done));
  }
  if (auto_ec_) ++auto_sr_count_;
  if (sr_sender_) return sr_sender_->write(data, length, std::move(done));
  return ec_sender_->write(data, length, std::move(done));
}

Status ReliableChannel::recv(std::uint8_t* buffer, std::size_t length,
                             DoneFn done) {
  if (options_.eager_threshold_bytes > 0 &&
      length <= options_.eager_threshold_bytes) {
    return eager_recv(buffer, length, std::move(done));
  }
  if (auto_ec_ && auto_use_ec(length)) {
    return auto_ec_->recv(buffer, length, std::move(done));
  }
  const verbs::MemoryRegion* mr = recv_mr(buffer, length);
  if (mr == nullptr) {
    return Status(StatusCode::kInternal, "memory registration failed");
  }
  if (sr_receiver_) {
    return sr_receiver_->expect(buffer, length, mr, std::move(done));
  }
  return ec_receiver_->expect(buffer, length, mr, std::move(done));
}

// ---------------------------------------------------------------------------
// Eager small-message path: payload in the control datagram, stop-and-wait
// reliability, no CTS round trip. Sizes are known on both sides, so the
// eager/rendezvous split never desynchronizes the order-based matching.
// ---------------------------------------------------------------------------

Status ReliableChannel::eager_send(const std::uint8_t* data,
                                   std::size_t length, DoneFn done) {
  if (length == 0 || length > 4000) {
    return Status(StatusCode::kInvalidArgument,
                  "eager payload must fit one control datagram");
  }
  const std::uint64_t id = eager_send_seq_++;
  EagerSend& state = eager_sends_[id];
  state.payload.assign(data, data + length);
  state.done = std::move(done);
  eager_transmit(id);
  return Status::ok();
}

void ReliableChannel::eager_transmit(std::uint64_t id) {
  const auto it = eager_sends_.find(id);
  if (it == eager_sends_.end()) return;
  EagerSend& state = it->second;
  ++state.attempts;

  ControlMessage& msg = ctrl_scratch_;
  reset_control(msg, ControlType::kEagerData, id);
  msg.payload.assign(state.payload.begin(), state.payload.end());
  encode_control(msg, wire_scratch_);
  src_control_->send(wire_scratch_.data(), wire_scratch_.size());

  state.timer = sim_.schedule(SimTime::from_seconds(options_.eager_rto_s),
                              [this, id] { eager_transmit(id); });
}

Status ReliableChannel::eager_recv(std::uint8_t* buffer, std::size_t length,
                                   DoneFn done) {
  const std::uint64_t id = eager_recv_seq_++;
  // Data may have raced ahead of the posted receive.
  if (const auto it = eager_stash_.find(id); it != eager_stash_.end()) {
    const std::size_t n = std::min(length, it->second.size());
    std::memcpy(buffer, it->second.data(), n);
    eager_stash_.erase(it);
    ++eager_completed_;
    if (done) done(Status::ok());
    return Status::ok();
  }
  eager_recvs_[id] = EagerRecv{buffer, length, std::move(done)};
  return Status::ok();
}

void ReliableChannel::on_dst_control(const std::uint8_t* data,
                                     std::size_t length) {
  const auto parsed = decode_control(data, length);
  if (!parsed) return;
  if (parsed->type != ControlType::kEagerData) return;  // receivers only
  // Always acknowledge — duplicates mean the previous ack was lost.
  ControlMessage& ack = ctrl_scratch_;
  reset_control(ack, ControlType::kEagerAck, parsed->msg_number);
  encode_control(ack, wire_scratch_);
  dst_control_->send(wire_scratch_.data(), wire_scratch_.size());

  if (const auto it = eager_recvs_.find(parsed->msg_number);
      it != eager_recvs_.end()) {
    const std::size_t n = std::min(it->second.length, parsed->payload.size());
    std::memcpy(it->second.buffer, parsed->payload.data(), n);
    DoneFn done = std::move(it->second.done);
    eager_recvs_.erase(it);
    ++eager_completed_;
    if (done) done(Status::ok());
  } else if (parsed->msg_number >= eager_recv_seq_) {
    // Early data for a not-yet-posted receive: stash one copy.
    eager_stash_.emplace(parsed->msg_number, parsed->payload);
  }  // else: duplicate of an already-completed message — ack was enough
}

void ReliableChannel::on_src_control(const std::uint8_t* data,
                                     std::size_t length) {
  const auto parsed = decode_control(data, length);
  if (parsed && parsed->type == ControlType::kEagerAck) {
    const auto it = eager_sends_.find(parsed->msg_number);
    if (it != eager_sends_.end()) {
      if (it->second.timer.valid()) sim_.cancel(it->second.timer);
      DoneFn done = std::move(it->second.done);
      eager_sends_.erase(it);
      if (done) done(Status::ok());
    }
    return;
  }
  // Everything else belongs to the SR/EC sender protocol.
  if (protocol_src_handler_) protocol_src_handler_(data, length);
}

std::uint64_t ReliableChannel::retransmissions() const {
  std::uint64_t total = auto_ec_ ? auto_ec_->retransmissions() : 0;
  if (sr_sender_) return total + sr_sender_->stats().retransmissions;
  return total + ec_sender_->stats().fallback_retransmissions;
}

// Model-guided routing for kAuto: both endpoints evaluate the same pure
// function of the message length, so their order-based matching on the two
// underlying QP pairs never desynchronizes.
bool ReliableChannel::auto_use_ec(std::size_t length) {
  // EC requires whole submessages; anything else goes SR.
  const std::size_t granularity = options_.ec.k * options_.attr.chunk_size;
  if (length % granularity != 0) return false;

  const std::size_t bucket = std::bit_width(length);
  if (const auto it = auto_choice_cache_.find(bucket);
      it != auto_choice_cache_.end()) {
    return it->second;
  }
  const model::LinkParams link = options_.profile.to_model();
  const std::uint64_t chunks = length / options_.attr.chunk_size;
  model::SchemeParams params;
  params.ec.k = options_.ec.k;
  params.ec.m = options_.ec.m;
  const double t_sr = model::expected_completion_s(
      options_.sr.nack_enabled ? model::Scheme::kSrNack
                               : model::Scheme::kSrRto,
      link, chunks);
  const double t_ec = model::expected_completion_s(model::Scheme::kEcMds,
                                                   link, chunks, params);
  const bool use_ec = t_ec < t_sr;
  auto_choice_cache_[bucket] = use_ec;
  return use_ec;
}

const verbs::MemoryRegion* ReliableChannel::recv_mr(std::uint8_t* buffer,
                                                    std::size_t length) {
  const auto key = std::make_pair(buffer, length);
  if (const auto it = mr_cache_.find(key); it != mr_cache_.end()) {
    return it->second;
  }
  const verbs::MemoryRegion* mr = dst_ctx_->mr_reg(buffer, length);
  mr_cache_.emplace(key, mr);
  return mr;
}

}  // namespace sdr::reliability
