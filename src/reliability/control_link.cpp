#include "reliability/control_link.hpp"

namespace sdr::reliability {

ControlLink::ControlLink(verbs::Nic& nic, std::size_t recv_buffers,
                         std::size_t buffer_bytes)
    : nic_(nic) {
  cq_ = std::make_unique<verbs::CompletionQueue>(recv_buffers + 16);
  verbs::QpConfig cfg;
  cfg.type = verbs::QpType::kUD;
  cfg.mtu = buffer_bytes;
  cfg.recv_cq = cq_.get();
  cfg.send_cq = nullptr;
  qp_ = nic_.create_qp(cfg);
  cq_->set_notify([this] { drain(); });

  buffer_bytes_ = buffer_bytes;
  buffers_.resize(recv_buffers * buffer_bytes);
  for (std::size_t i = 0; i < recv_buffers; ++i) {
    verbs::RecvWr rwr;
    rwr.wr_id = i;
    rwr.addr = buffers_.data() + i * buffer_bytes_;
    rwr.length = buffer_bytes_;
    qp_->post_recv(rwr);
  }
}

ControlLink::~ControlLink() {
  if (qp_ != nullptr) nic_.destroy_qp(qp_->num());
}

verbs::NicId ControlLink::nic_id() const { return nic_.id(); }
verbs::QpNumber ControlLink::qp_number() const { return qp_->num(); }

void ControlLink::connect(verbs::NicId peer_nic, verbs::QpNumber peer_qp) {
  peer_nic_ = peer_nic;
  peer_qp_ = peer_qp;
}

void ControlLink::send(const std::uint8_t* data, std::size_t length) {
  verbs::SendWr wr;
  wr.local_addr = data;
  wr.length = length;
  wr.signaled = false;
  wr.dst_nic = peer_nic_;
  wr.dst_qp = peer_qp_;
  qp_->post_send(wr);
  ++sent_;
}

void ControlLink::drain() {
  while (auto cqe = cq_->poll_one()) {
    if (!cqe->is_recv) continue;
    const std::size_t buf = static_cast<std::size_t>(cqe->wr_id);
    ++received_;
    std::uint8_t* addr = buffers_.data() + buf * buffer_bytes_;
    if (on_receive_) {
      on_receive_(addr, cqe->byte_len);
    }
    verbs::RecvWr rwr;
    rwr.wr_id = buf;
    rwr.addr = addr;
    rwr.length = buffer_bytes_;
    qp_->post_recv(rwr);
  }
}

}  // namespace sdr::reliability
