#include "reliability/tuner.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "ec/probability.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::reliability {

model::LinkParams LinkProfile::to_model() const {
  model::LinkParams params;
  params.bandwidth_bps = bandwidth_bps;
  params.rtt_s = rtt_s;
  params.chunk_bytes = chunk_bytes;
  // Chunk-level drop probability from the per-packet estimate (Fig 15).
  params.p_drop = ec::chunk_drop_probability(p_drop_packet, chunk_bytes / mtu);
  return params;
}

Recommendation recommend(const LinkProfile& profile,
                         std::size_t message_bytes,
                         const TunerOptions& options) {
  const model::LinkParams link = profile.to_model();
  const std::uint64_t chunks =
      (message_bytes + profile.chunk_bytes - 1) / profile.chunk_bytes;
  const double ideal = model::ideal_completion_s(link, chunks);

  std::vector<Candidate> candidates;
  auto add = [&](model::Scheme scheme, model::SchemeParams params) {
    Candidate c;
    c.scheme = scheme;
    c.params = params;
    c.expected_s = model::expected_completion_s(scheme, link, chunks, params);
    if (options.tail_samples > 0) {
      const auto dist = model::sample_distribution(
          scheme, link, chunks, options.tail_samples, options.seed, params);
      c.p999_s = dist.p999;
    } else if (options.tail_weight > 0.0) {
      // Closed-form tail: no Monte-Carlo budget needed.
      c.p999_s = model::quantile_completion_s(scheme, link, chunks, 0.999,
                                              params);
    }
    c.slowdown_vs_ideal = c.expected_s / ideal;
    candidates.push_back(std::move(c));
  };

  add(model::Scheme::kSrRto, model::SchemeParams{});
  if (options.consider_nack) add(model::Scheme::kSrNack, model::SchemeParams{});
  for (const auto& [k, m] : options.ec_splits) {
    model::SchemeParams params;
    params.ec.k = k;
    params.ec.m = m;
    add(model::Scheme::kEcMds, params);
    if (options.consider_xor) add(model::Scheme::kEcXor, params);
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const Candidate& a, const Candidate& b) {
                     const double ca =
                         a.expected_s + options.tail_weight * a.p999_s;
                     const double cb =
                         b.expected_s + options.tail_weight * b.p999_s;
                     return ca < cb;
                   });

  Recommendation rec;
  rec.best = candidates.front();
  rec.ranked = candidates;

  SDR_INFO("tuner: %s for %zu-byte message (%.2fx ideal, %zu candidates)",
           model::scheme_name(rec.best.scheme).c_str(), message_bytes,
           rec.best.slowdown_vs_ideal, candidates.size());

  if (telemetry::enabled()) {
    // Tuner decisions are process-wide owned counters (the tuner is a free
    // function with no instance to scope them to).
    auto& reg = telemetry::registry();
    reg.counter("reliability.tuner.recommendations").inc();
    reg.counter(std::string("reliability.tuner.pick.") +
                model::scheme_name(rec.best.scheme))
        .inc();
  }

  std::ostringstream why;
  const double bdp = bdp_bytes(profile.bandwidth_bps, profile.rtt_s);
  why << model::scheme_name(rec.best.scheme) << ": message "
      << format_bytes(message_bytes) << " vs BDP " << format_bytes(
             static_cast<std::uint64_t>(bdp))
      << ", chunk drop rate " << link.p_drop << ". Expected slowdown "
      << rec.best.slowdown_vs_ideal << "x vs ideal; runner-up "
      << model::scheme_name(rec.ranked.size() > 1 ? rec.ranked[1].scheme
                                                  : rec.best.scheme)
      << " at " << (rec.ranked.size() > 1 ? rec.ranked[1].slowdown_vs_ideal
                                          : rec.best.slowdown_vs_ideal)
      << "x.";
  rec.rationale = why.str();
  return rec;
}

}  // namespace sdr::reliability
