#include "reliability/sr_protocol.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/failpoint.hpp"
#include "common/logging.hpp"

namespace sdr::reliability {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

SrSender::SrSender(sim::Simulator& simulator, core::Qp& qp,
                   ControlLink& control, const LinkProfile& profile,
                   SrProtoConfig config)
    : sim_(simulator),
      qp_(qp),
      control_(control),
      profile_(profile),
      config_(config),
      chunk_bytes_(qp.attr().chunk_size) {
  RttEstimator::Params est_params;
  est_params.initial_rto_s = config_.rto_s;  // static RTO seeds the estimator
  // Principled floor: an acknowledgment can never return faster than the
  // round trip plus the receiver's ACK cadence; an RTO below that would
  // guarantee spurious retransmission storms.
  est_params.min_rto_s = profile.rtt_s + 2.0 * config_.ack_interval_s;
  estimator_ = RttEstimator(est_params);
  control_.set_receiver(
      [this](const std::uint8_t* d, std::size_t n) { on_control(d, n); });
  // Retransmission timers start when the receiver's CTS arrives (that is
  // when injection actually begins); arming them at write() time would
  // spuriously fire while the chunks are still queued behind the CTS.
  qp_.set_cts_handler([this](std::uint64_t msg_number) {
    arm_all_timers(msg_number);
  });
  if (telemetry::enabled()) register_metrics();
}

void SrSender::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("reliability.sr.sender"));
  tele_.bind_counter("messages", &stats_.messages);
  tele_.bind_counter("chunks_sent", &stats_.chunks_sent);
  tele_.bind_counter("retransmissions", &stats_.retransmissions);
  tele_.bind_counter("acks_received", &stats_.acks_received);
  tele_.bind_counter("nacks_received", &stats_.nacks_received);
  tele_.bind_gauge("srtt_s", [this] { return estimator_.srtt_s(); });
  tele_.bind_gauge("rto_s", [this] { return current_rto_s(); });
  tele_.bind_gauge("inflight_messages", [this] {
    return static_cast<double>(messages_.size());
  });
  rtt_hist_ = tele_.histogram("rtt_sample_s", 1e-6, 100.0);
  chunk_completion_hist_ = tele_.histogram("chunk_completion_s", 1e-6, 1e3);
  msg_completion_hist_ = tele_.histogram("msg_completion_s", 1e-6, 1e3);
}

Status SrSender::write(const std::uint8_t* data, std::size_t length,
                       DoneFn done) {
  if (data == nullptr || length == 0) {
    return Status(StatusCode::kInvalidArgument, "empty write");
  }
  core::SendHandle* handle = nullptr;
  if (Status s = qp_.send_stream_start(0, false, &handle); !s) return s;

  const std::uint64_t msg_number = handle->msg_number();
  MsgState* state;
  if (spare_) {
    // Reuse the node (and the per-chunk vector capacity inside it) of a
    // finished message instead of allocating a fresh one.
    spare_.key() = msg_number;
    state = &messages_.insert(std::move(spare_)).position->second;
  } else {
    state = &messages_[msg_number];
  }
  MsgState& msg = *state;
  msg.handle = handle;
  msg.data = data;
  msg.length = length;
  msg.chunks = (length + chunk_bytes_ - 1) / chunk_bytes_;
  msg.acked_count = 0;
  msg.acked.resize(msg.chunks);
  msg.timers.assign(msg.chunks, sim::EventId{});
  msg.sent_at_s.assign(msg.chunks, -1.0);
  msg.retries.assign(msg.chunks, 0);
  msg.retransmitted.resize(msg.chunks);
  msg.cts_at_s = -1.0;
  msg.write_at_s = sim_.now().seconds();
  msg.done = std::move(done);
  ++stats_.messages;
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "write", sim_.now(),
                               msg_number, length, msg.chunks);
  }

  for (std::size_t c = 0; c < msg.chunks; ++c) {
    send_chunk(msg, c, /*retransmission=*/false);
  }
  if (handle->cts_ready()) arm_all_timers(msg_number);
  return Status::ok();
}

void SrSender::arm_all_timers(std::uint64_t msg_number) {
  const auto it = messages_.find(msg_number);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  msg.cts_at_s = sim_.now().seconds();
  for (std::size_t c = 0; c < msg.chunks; ++c) {
    if (!msg.acked.test(c) && !msg.timers[c].valid()) arm_timer(msg_number, c);
  }
}

void SrSender::send_chunk(MsgState& msg, std::size_t chunk,
                          bool retransmission) {
  const std::size_t offset = chunk * chunk_bytes_;
  const std::size_t len = std::min(chunk_bytes_, msg.length - offset);
  if (retransmission && telemetry::tracing()) {
    // Before the injection: the re-post can traverse the channel in the
    // same sim-time instant, and the timeline should read
    // retransmit -> posted -> tx.
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kRetransmit,
                             0, msg.handle->msg_number(),
                             static_cast<std::uint32_t>(chunk),
                             telemetry::kNoImm, len);
  }
  if (retransmission && telemetry::spanning()) {
    // Also before injection, so the fresh attempt span inherits the pending
    // drop/RTO cause and the flow arrow points at it.
    telemetry::spans().on_retransmit(sim_.now(), msg.handle->msg_number(),
                                     static_cast<std::uint32_t>(chunk), len);
  }
  if (retransmission && telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "retransmit", sim_.now(),
                               msg.handle->msg_number(), chunk,
                               msg.retries[chunk], len);
  }
  const Status s =
      qp_.send_stream_continue(msg.handle, msg.data + offset, offset, len);
  if (!s) {
    SDR_WARN("SR chunk injection failed: %s", std::string(to_string(s.code())).c_str());
    return;
  }
  msg.sent_at_s[chunk] = sim_.now().seconds();
  if (retransmission) {
    msg.retransmitted.set(chunk);
    if (msg.retries[chunk] < 8) ++msg.retries[chunk];
    ++stats_.retransmissions;
  }
  ++stats_.chunks_sent;
}

void SrSender::arm_timer(std::uint64_t msg_number, std::size_t chunk) {
  const auto it = messages_.find(msg_number);
  if (it == messages_.end()) return;
  // Per-chunk exponential backoff (capped at 16x — the base RTO is already
  // conservative) plus up to 25% jitter: without jitter, the RTOs of all
  // chunks lost in one burst expire together and the retransmission storm
  // tail-drops itself in congested queues.
  const double backoff =
      static_cast<double>(1u << std::min<std::uint8_t>(
          it->second.retries[chunk], 4));
  const double jitter = 1.0 + 0.25 * rng_.next_double();
  it->second.timers[chunk] = sim_.schedule(
      SimTime::from_seconds(current_rto_s() * backoff * jitter),
      [this, msg_number, chunk] {
        telemetry::ProfScope prof(telemetry::ProfCategory::kSr);
        const auto mit = messages_.find(msg_number);
        if (mit == messages_.end()) return;
        MsgState& msg = mit->second;
        if (msg.acked.test(chunk)) return;
        if (telemetry::tracing()) {
          telemetry::tracer().emit(sim_.now(),
                                   telemetry::TraceEventType::kRtoFired, 0,
                                   msg_number,
                                   static_cast<std::uint32_t>(chunk));
        }
        if (telemetry::spanning()) {
          telemetry::spans().on_rto(sim_.now(), msg_number,
                                    static_cast<std::uint32_t>(chunk));
        }
        if (telemetry::flight_recording()) {
          telemetry::flight().record(
              telemetry::FlightLayer::kSr, qp_.control_qp_num(), "rto_fired",
              sim_.now(), msg_number, chunk, msg.retries[chunk],
              static_cast<std::uint64_t>(current_rto_s() * 1e6));
        }
        send_chunk(msg, chunk, /*retransmission=*/true);
        arm_timer(msg_number, chunk);
      });
}

void SrSender::on_control(const std::uint8_t* data, std::size_t length) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSr);
  if (!decode_control(data, length, ctrl_scratch_)) return;
  const ControlMessage& msg = ctrl_scratch_;
  const auto it = messages_.find(msg.msg_number);
  if (it == messages_.end()) return;  // stale ACK for a finished message

  switch (msg.type) {
    case ControlType::kSrAck:
      ++stats_.acks_received;
      apply_ack(it->second, msg);
      if (telemetry::flight_recording()) {
        telemetry::flight().record(telemetry::FlightLayer::kSr,
                                   qp_.control_qp_num(), "ack_applied",
                                   sim_.now(), msg.msg_number, msg.cumulative,
                                   it->second.acked_count, it->second.chunks);
      }
      break;
    case ControlType::kSrNack: {
      ++stats_.nacks_received;
      MsgState& state = it->second;
      for (std::uint32_t chunk : msg.indices) {
        if (chunk >= state.chunks || state.acked.test(chunk)) continue;
        if (state.timers[chunk].valid()) sim_.cancel(state.timers[chunk]);
        send_chunk(state, chunk, /*retransmission=*/true);
        arm_timer(msg.msg_number, chunk);
      }
      if (telemetry::flight_recording()) {
        telemetry::flight().record(telemetry::FlightLayer::kSr,
                                   qp_.control_qp_num(), "nack_applied",
                                   sim_.now(), msg.msg_number,
                                   msg.indices.size(),
                                   msg.indices.empty() ? 0 : msg.indices[0]);
      }
      break;
    }
    default:
      break;
  }
  // apply_ack may have finished the message.
  if (const auto again = messages_.find(msg.msg_number);
      again != messages_.end() &&
      again->second.acked_count == again->second.chunks) {
    finish(msg.msg_number);
  }
}

void SrSender::apply_ack(MsgState& msg, const ControlMessage& ack) {
  const std::size_t cumulative =
      std::min<std::size_t>(ack.cumulative, msg.chunks);
  for (std::size_t c = 0; c < cumulative; ++c) mark_acked(msg, c);
  // Word scan over the selective window: countr_zero jumps straight to the
  // next set bit; clearing it with `word & (word - 1)` makes the loop cost
  // proportional to acked chunks, not window width.
  for (std::size_t w = 0; w < ack.selective.size(); ++w) {
    std::uint64_t word = ack.selective[w];
    const std::size_t base = ack.selective_base + w * 64;
    while (word != 0) {
      const std::size_t chunk =
          base + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      if (chunk < msg.chunks) mark_acked(msg, chunk);
    }
  }
}

void SrSender::mark_acked(MsgState& msg, std::size_t chunk) {
  if (msg.acked.test(chunk)) return;
  msg.acked.set(chunk);
  ++msg.acked_count;
  if (msg.timers[chunk].valid()) {
    sim_.cancel(msg.timers[chunk]);
    msg.timers[chunk] = {};
  }
  if (!msg.retransmitted.test(chunk) && msg.sent_at_s[chunk] >= 0.0) {
    // Karn: only never-retransmitted chunks yield unambiguous RTT samples.
    // Chunks queued before the CTS only start travelling when it arrives.
    const double departed = std::max(msg.sent_at_s[chunk], msg.cts_at_s);
    const double sample = sim_.now().seconds() - departed;
    if (config_.adaptive_rto) estimator_.update(sample);
    rtt_hist_.record(sample);
  }
  if (chunk_completion_hist_.live() && msg.write_at_s >= 0.0) {
    chunk_completion_hist_.record(sim_.now().seconds() - msg.write_at_s);
  }
}

void SrSender::finish(std::uint64_t msg_number) {
  const auto it = messages_.find(msg_number);
  if (it == messages_.end()) return;
  // Extract rather than erase: the node (with its vector capacity) is kept
  // for the next write(). The callback runs after the extraction so a
  // re-entrant write() sees a consistent map either way.
  auto node = messages_.extract(it);
  MsgState& msg = node.mapped();
  if (msg_completion_hist_.live() && msg.write_at_s >= 0.0) {
    msg_completion_hist_.record(sim_.now().seconds() - msg.write_at_s);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "msg_done", sim_.now(),
                               msg_number, msg.chunks,
                               stats_.retransmissions);
  }
  qp_.send_stream_end(msg.handle);
  reap(msg.handle);
  DoneFn done = std::move(msg.done);
  msg.handle = nullptr;
  msg.data = nullptr;
  spare_ = std::move(node);
  if (done) done(Status::ok());
}

void SrSender::reap(core::SendHandle* handle) {
  // Poll the handle until the backend confirms injection completed, then it
  // is recycled; lazy polling keeps completion latency off the ACK path.
  if (qp_.send_poll(handle).code() == StatusCode::kNotReady) {
    sim_.schedule(SimTime::from_micros(10),
                  [this, handle] { reap(handle); });
  }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

SrReceiver::SrReceiver(sim::Simulator& simulator, core::Qp& qp,
                       ControlLink& control, const LinkProfile& profile,
                       SrProtoConfig config)
    : sim_(simulator),
      qp_(qp),
      control_(control),
      profile_(profile),
      config_(config) {
  qp_.set_recv_event_handler(
      [this](const core::RecvEvent& event) { on_chunk_event(event); });
  if (telemetry::enabled()) register_metrics();
}

void SrReceiver::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("reliability.sr.receiver"));
  tele_.bind_counter("messages", &stats_.messages);
  tele_.bind_counter("acks_sent", &stats_.acks_sent);
  tele_.bind_counter("nacks_sent", &stats_.nacks_sent);
  tele_.bind_gauge("inflight_messages", [this] {
    return static_cast<double>(messages_.size());
  });
}

Status SrReceiver::expect(std::uint8_t* buffer, std::size_t length,
                          const verbs::MemoryRegion* mr, DoneFn done) {
  core::RecvHandle* handle = nullptr;
  if (Status s = qp_.recv_post(buffer, length, mr, &handle); !s) return s;
  const std::uint64_t msg_number = handle->msg_number();
  MsgState* state;
  if (spare_) {
    // Reuse the completed-message node, keeping its vector capacity.
    spare_.key() = msg_number;
    state = &messages_.insert(std::move(spare_)).position->second;
  } else {
    state = &messages_[msg_number];
  }
  MsgState& msg = *state;
  msg.handle = handle;
  msg.chunks = handle->chunk_count();
  msg.done = std::move(done);
  msg.last_nack_s.assign(msg.chunks, -1.0);
  msg.complete = false;
  msg.data_seen = false;
  ++stats_.messages;
  ack_tick(msg_number);
  if (config_.cts_retry_s > 0.0) {
    sim_.schedule(SimTime::from_seconds(config_.cts_retry_s),
                  [this, msg_number] { cts_tick(msg_number); });
  }
  return Status::ok();
}

void SrReceiver::cts_tick(std::uint64_t msg_number) {
  const auto it = messages_.find(msg_number);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  // Any data means the sender got a CTS; the retry has done its job.
  if (msg.complete || msg.data_seen) return;
  qp_.resend_cts(msg.handle);
  sim_.schedule(SimTime::from_seconds(config_.cts_retry_s),
                [this, msg_number] { cts_tick(msg_number); });
}

void SrReceiver::on_chunk_event(const core::RecvEvent& event) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSr);
  const auto it = messages_.find(event.handle->msg_number());
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  msg.data_seen = true;
  if (msg.complete) return;

  if (event.type == core::RecvEvent::Type::kMessageCompleted) {
    complete(msg, event.handle->msg_number());
    return;
  }
  if (config_.nack_enabled) maybe_nack(msg, event.chunk_index);
}

void SrReceiver::send_ack(MsgState& msg) {
  const AtomicBitmap* bitmap = nullptr;
  if (!qp_.recv_bitmap_get(msg.handle, &bitmap)) return;

  ControlMessage& ack = ctrl_scratch_;
  reset_control(ack, ControlType::kSrAck, msg.handle->msg_number());
  std::size_t cumulative = bitmap->first_zero(msg.chunks);
  // Failpoint for the conformance harness (src/check/): claim one chunk
  // beyond the true cumulative point, silently "acknowledging" the first
  // missing chunk — the classic off-by-one a bitmap ACK encoder can make.
  if (SDR_FAILPOINT("sr.ack_cumulative_off_by_one") &&
      cumulative < msg.chunks) {
    ++cumulative;
  }
  ack.cumulative = static_cast<std::uint32_t>(cumulative);
  // Selective window: words starting at the cumulative point.
  const std::size_t base_word = cumulative / 64;
  ack.selective_base = static_cast<std::uint32_t>(base_word * 64);
  ack.selective.reserve(config_.selective_window_words);
  for (std::size_t w = 0; w < config_.selective_window_words; ++w) {
    const std::size_t wi = base_word + w;
    if (wi >= bitmap_words(msg.chunks)) break;
    ack.selective.push_back(bitmap->load_word(wi));
  }
  encode_control(ack, wire_scratch_);
  control_.send(wire_scratch_.data(), wire_scratch_.size());
  ++stats_.acks_sent;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kAckSent,
                             0, ack.msg_number, ack.cumulative);
  }
  if (telemetry::spanning()) {
    telemetry::spans().on_instant(sim_.now(),
                                  telemetry::TraceEventType::kAckSent,
                                  ack.msg_number, ack.cumulative);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "ack_sent", sim_.now(),
                               ack.msg_number, ack.cumulative,
                               ack.selective.size());
  }
}

void SrReceiver::maybe_nack(MsgState& msg, std::size_t completed_chunk) {
  const AtomicBitmap* bitmap = nullptr;
  if (!qp_.recv_bitmap_get(msg.handle, &bitmap)) return;
  const std::size_t cumulative = bitmap->first_zero(msg.chunks);
  if (completed_chunk < cumulative + config_.nack_gap_threshold) return;

  // send_ack and maybe_nack never overlap within one callback, so they can
  // share the scratch message.
  ControlMessage& nack = ctrl_scratch_;
  reset_control(nack, ControlType::kSrNack, msg.handle->msg_number());
  const double now_s = sim_.now().seconds();
  // Word scan for the holes in [cumulative, completed_chunk): one bitmap
  // load per 64 chunks, countr_zero to hop between missing ones.
  std::size_t c = cumulative;
  while (c < completed_chunk && nack.indices.size() < 256) {
    const std::size_t wi = c >> 6;
    const std::size_t word_base = wi << 6;
    std::uint64_t missing = ~bitmap->load_word(wi) & (~0ULL << (c & 63));
    while (missing != 0 && nack.indices.size() < 256) {
      const std::size_t hole =
          word_base + static_cast<std::size_t>(std::countr_zero(missing));
      missing &= missing - 1;
      if (hole >= completed_chunk) break;
      if (msg.last_nack_s[hole] >= 0.0 &&
          now_s - msg.last_nack_s[hole] < config_.nack_holdoff_s) {
        continue;
      }
      msg.last_nack_s[hole] = now_s;
      nack.indices.push_back(static_cast<std::uint32_t>(hole));
    }
    c = word_base + 64;
  }
  if (nack.indices.empty()) return;
  encode_control(nack, wire_scratch_);
  control_.send(wire_scratch_.data(), wire_scratch_.size());
  ++stats_.nacks_sent;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kNackSent,
                             0, nack.msg_number, nack.indices.front());
  }
  if (telemetry::spanning()) {
    telemetry::spans().on_instant(sim_.now(),
                                  telemetry::TraceEventType::kNackSent,
                                  nack.msg_number, nack.indices.front());
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "nack_sent", sim_.now(),
                               nack.msg_number, nack.indices.size(),
                               nack.indices.front());
  }
}

void SrReceiver::ack_tick(std::uint64_t msg_number) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSr);
  const auto it = messages_.find(msg_number);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  if (msg.complete) return;
  send_ack(msg);
  sim_.schedule(SimTime::from_seconds(config_.ack_interval_s),
                [this, msg_number] { ack_tick(msg_number); });
}

void SrReceiver::complete(MsgState& msg, std::uint64_t msg_number) {
  msg.complete = true;
  // Final ACK (repeated to survive control-path drops).
  const std::uint32_t cumulative = static_cast<std::uint32_t>(msg.chunks);
  ControlMessage& ack = ctrl_scratch_;
  reset_control(ack, ControlType::kSrAck, msg_number);
  ack.cumulative = cumulative;
  encode_control(ack, wire_scratch_);
  control_.send(wire_scratch_.data(), wire_scratch_.size());
  ++stats_.acks_sent;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kAckSent,
                             0, msg_number, cumulative);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kSr,
                               qp_.control_qp_num(), "msg_complete", sim_.now(),
                               msg_number, msg.chunks);
  }
  for (std::size_t r = 1; r < config_.final_ack_repeats; ++r) {
    // The repeat rebuilds the (tiny, constant) final ACK into the scratch
    // buffers at fire time instead of capturing a copy of the wire bytes —
    // the capture stays within the inline event budget and the repeat path
    // allocates nothing.
    sim_.schedule(SimTime::from_seconds(config_.ack_interval_s *
                                        static_cast<double>(r)),
                  [this, msg_number, cumulative] {
                    ControlMessage& repeat = ctrl_scratch_;
                    reset_control(repeat, ControlType::kSrAck, msg_number);
                    repeat.cumulative = cumulative;
                    encode_control(repeat, wire_scratch_);
                    control_.send(wire_scratch_.data(), wire_scratch_.size());
                    ++stats_.acks_sent;
                  });
  }
  qp_.recv_complete(msg.handle);
  DoneFn done = std::move(msg.done);
  // Keep the node for the next expect() instead of deallocating it.
  if (auto node = messages_.extract(msg_number)) {
    node.mapped().handle = nullptr;
    spare_ = std::move(node);
  }
  if (done) done(Status::ok());
}

}  // namespace sdr::reliability
