// RFC 6298-style adaptive retransmission timeout.
//
// The paper lists "retransmission timeout (RTO) tuning" among the SR
// extensions a software-defined reliability layer can adopt (§4.1.1, citing
// F-RTO). This estimator maintains the classic smoothed RTT / RTT variance
// pair from per-chunk acknowledgment samples; Karn's algorithm applies
// (callers must not feed samples from retransmitted chunks).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sdr::reliability {

class RttEstimator {
 public:
  struct Params {
    double alpha{1.0 / 8.0};   // SRTT gain
    double beta{1.0 / 4.0};    // RTTVAR gain
    double k{4.0};             // RTO = SRTT + k * RTTVAR
    double min_rto_s{1e-4};
    double max_rto_s{10.0};
    double initial_rto_s{0.2};
  };

  RttEstimator() : params_(Params{}) {}
  explicit RttEstimator(Params params) : params_(params) {}

  /// Feed one RTT sample (seconds). Per Karn's algorithm the caller must
  /// only sample chunks acknowledged on their first transmission.
  void update(double sample_s) {
    if (sample_s <= 0.0) return;
    if (samples_ == 0) {
      srtt_ = sample_s;
      rttvar_ = sample_s / 2.0;
    } else {
      rttvar_ = (1.0 - params_.beta) * rttvar_ +
                params_.beta * std::abs(srtt_ - sample_s);
      srtt_ = (1.0 - params_.alpha) * srtt_ + params_.alpha * sample_s;
    }
    ++samples_;
  }

  /// Exponential backoff on a retransmission timeout (reset by the next
  /// valid sample implicitly through rto()'s recomputation).
  void backoff() { backoff_factor_ = std::min(backoff_factor_ * 2.0, 64.0); }
  void reset_backoff() { backoff_factor_ = 1.0; }

  double rto_s() const {
    // The pre-sample branch honors [min, max] too: backoff on the initial
    // RTO (e.g. 0.2 s doubled six times = 12.8 s) must not escape the cap.
    if (samples_ == 0) {
      return std::clamp(params_.initial_rto_s * backoff_factor_,
                        params_.min_rto_s, params_.max_rto_s);
    }
    const double rto = srtt_ + params_.k * rttvar_;
    return std::clamp(rto * backoff_factor_, params_.min_rto_s,
                      params_.max_rto_s);
  }

  double srtt_s() const { return srtt_; }
  double rttvar_s() const { return rttvar_; }
  std::uint64_t samples() const { return samples_; }

 private:
  Params params_;
  double srtt_{0.0};
  double rttvar_{0.0};
  double backoff_factor_{1.0};
  std::uint64_t samples_{0};
};

}  // namespace sdr::reliability
