// Control-path connection for reliability protocols (paper §4.1): a UD
// queue pair dedicated to ACK/NACK datagrams, kept separate from the SDR
// data path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "verbs/cq.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {

class ControlLink {
 public:
  /// Creates a UD QP on `nic` with `recv_buffers` pre-posted datagram
  /// buffers of `buffer_bytes` each.
  /// Lifetime: the link owns a QP inside `nic` and unregisters it on
  /// destruction — the NIC must outlive the ControlLink.
  ControlLink(verbs::Nic& nic, std::size_t recv_buffers = 256,
              std::size_t buffer_bytes = 4096);
  ~ControlLink();
  ControlLink(const ControlLink&) = delete;
  ControlLink& operator=(const ControlLink&) = delete;

  verbs::NicId nic_id() const;
  verbs::QpNumber qp_number() const;

  /// Address the peer (its nic id + control QP number).
  void connect(verbs::NicId peer_nic, verbs::QpNumber peer_qp);

  /// Send one datagram (<= MTU) to the connected peer.
  void send(const std::uint8_t* data, std::size_t length);

  using ReceiveFn = std::function<void(const std::uint8_t*, std::size_t)>;

  /// Incoming datagrams are delivered here (payload copied out).
  void set_receiver(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// The currently installed receiver — lets a composition layer wrap an
  /// already-installed protocol handler with a dispatcher.
  ReceiveFn receiver() const { return on_receive_; }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }

 private:
  void drain();

  verbs::Nic& nic_;
  std::unique_ptr<verbs::CompletionQueue> cq_;
  verbs::Qp* qp_{nullptr};
  verbs::NicId peer_nic_{0};
  verbs::QpNumber peer_qp_{0};
  // Receive buffers: one flat allocation, buffer i at [i * buffer_bytes_].
  std::vector<std::uint8_t> buffers_;
  std::size_t buffer_bytes_{0};
  ReceiveFn on_receive_;
  std::uint64_t sent_{0};
  std::uint64_t received_{0};
};

}  // namespace sdr::reliability
