// Wire encoding of the control-path ACK/NACK messages (paper §4.1.1-§4.1.2).
//
// SR ACKs compactly encode the receiver's bitmap in two parts: a cumulative
// ACK (highest chunk below which everything arrived) plus a selective
// bitmap window starting there. NACKs list explicit chunk indices. EC ACKs
// signal full-message recovery; EC NACKs list failed data submessages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sdr::reliability {

enum class ControlType : std::uint8_t {
  kSrAck = 1,
  kSrNack = 2,
  kEcAck = 3,
  kEcNack = 4,
  // Eager small-message path (the rendezvous-vs-eager optimization the
  // paper's §4.1 control-path freedom enables, citing [43]): payload rides
  // the control datagram, skipping the SDR CTS round trip.
  kEagerData = 5,
  kEagerAck = 6,
};

struct ControlMessage {
  ControlType type{ControlType::kSrAck};
  std::uint64_t msg_number{0};   // SDR message number of the (first) message

  // kSrAck
  std::uint32_t cumulative{0};           // chunks [0, cumulative) received
  std::uint32_t selective_base{0};       // first chunk the window describes
  std::vector<std::uint64_t> selective;  // bitmap window words

  // kSrNack / kEcNack
  std::vector<std::uint32_t> indices;    // missing chunks / failed submsgs

  // kEagerData
  std::vector<std::uint8_t> payload;

  bool operator==(const ControlMessage&) const = default;
};

/// Serialize into a datagram payload (must fit the control MTU; the window
/// and index list are truncated by the callers to guarantee this).
std::vector<std::uint8_t> encode_control(const ControlMessage& msg);

/// Parse; returns std::nullopt on malformed/truncated input.
std::optional<ControlMessage> decode_control(const std::uint8_t* data,
                                             std::size_t length);

}  // namespace sdr::reliability
