// Wire encoding of the control-path ACK/NACK messages (paper §4.1.1-§4.1.2).
//
// SR ACKs compactly encode the receiver's bitmap in two parts: a cumulative
// ACK (highest chunk below which everything arrived) plus a selective
// bitmap window starting there. NACKs list explicit chunk indices. EC ACKs
// signal full-message recovery; EC NACKs list failed data submessages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sdr::reliability {

enum class ControlType : std::uint8_t {
  kSrAck = 1,
  kSrNack = 2,
  kEcAck = 3,
  kEcNack = 4,
  // Eager small-message path (the rendezvous-vs-eager optimization the
  // paper's §4.1 control-path freedom enables, citing [43]): payload rides
  // the control datagram, skipping the SDR CTS round trip.
  kEagerData = 5,
  kEagerAck = 6,
};

struct ControlMessage {
  ControlType type{ControlType::kSrAck};
  std::uint64_t msg_number{0};   // SDR message number of the (first) message

  // kSrAck
  std::uint32_t cumulative{0};           // chunks [0, cumulative) received
  std::uint32_t selective_base{0};       // first chunk the window describes
  std::vector<std::uint64_t> selective;  // bitmap window words

  // kSrNack / kEcNack
  std::vector<std::uint32_t> indices;    // missing chunks / failed submsgs

  // kEagerData
  std::vector<std::uint8_t> payload;

  bool operator==(const ControlMessage&) const = default;
};

/// Reset a reused (scratch) ControlMessage to an empty message of the
/// given type, keeping its vectors' capacity.
inline void reset_control(ControlMessage& msg, ControlType type,
                          std::uint64_t msg_number) {
  msg.type = type;
  msg.msg_number = msg_number;
  msg.cumulative = 0;
  msg.selective_base = 0;
  msg.selective.clear();
  msg.indices.clear();
  msg.payload.clear();
}

/// Serialize into a datagram payload (must fit the control MTU; the window
/// and index list are truncated by the callers to guarantee this).
std::vector<std::uint8_t> encode_control(const ControlMessage& msg);

/// Scratch-buffer variant: serializes into `out` (cleared first), reusing
/// its capacity — the per-ACK hot path allocates nothing in steady state.
void encode_control(const ControlMessage& msg, std::vector<std::uint8_t>& out);

/// Parse; returns std::nullopt on malformed/truncated input.
std::optional<ControlMessage> decode_control(const std::uint8_t* data,
                                             std::size_t length);

/// Scratch-buffer variant: parses into `out`, reusing its vectors'
/// capacity. Returns false on malformed/truncated input (`out` is then in
/// an unspecified but valid state).
bool decode_control(const std::uint8_t* data, std::size_t length,
                    ControlMessage& out);

}  // namespace sdr::reliability
