// Executable Selective Repeat reliability over the SDR API (paper §4.1.1).
//
// Sender: streams message chunks through SDR streaming sends; every chunk
// carries a retransmission timeout RTO = RTT + alpha*RTT; expired chunks are
// re-injected with send_stream_continue (the retransmission use case the
// streaming API exists for). ACKs remove acknowledged chunks from the
// retransmission queue.
//
// Receiver: reacts to chunk-bitmap completions (the event-driven analog of
// polling the SDR bitmap), periodically sending ACKs that encode the bitmap
// as a cumulative ACK plus a selective window. With NACK enabled, gaps
// observed in the bitmap trigger immediate negative acknowledgments, cutting
// drop recovery to ~1 RTT.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "reliability/ack_codec.hpp"
#include "reliability/control_link.hpp"
#include "reliability/profile.hpp"
#include "reliability/rtt_estimator.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::reliability {

struct SrProtoConfig {
  /// Chunk retransmission timeout. The paper sets RTO = RTT + alpha*RTT;
  /// the "SR RTO" evaluation scenario corresponds to 3 RTT.
  double rto_s{0.075};
  /// Receiver ACK cadence.
  double ack_interval_s{0.005};
  /// Selective-ACK window: 64-bit words following the cumulative point.
  /// "As much as fits in the ACK payload" (paper §4.1.1): 64 words cover
  /// 4096 chunks (512 B on the wire) — undersizing the window makes the
  /// sender spuriously retransmit received-but-unacknowledged chunks.
  std::size_t selective_window_words{64};
  /// Enable receiver-side NACKs on bitmap gaps.
  bool nack_enabled{false};
  /// A gap must be at least this many chunks old (in completions) to NACK.
  std::size_t nack_gap_threshold{2};
  /// Re-NACK suppression interval (seconds); ~1 RTT is sensible.
  double nack_holdoff_s{0.025};
  /// How many times the receiver repeats the final ACK (guards against
  /// control-path drops after recv_complete).
  std::size_t final_ack_repeats{3};
  /// Receiver-side CTS retry pace. The CTS is a single unreliable datagram
  /// and the sender arms no timers until it arrives — a lost CTS wedges
  /// the message forever. When > 0, the receiver re-sends the CTS every
  /// cts_retry_s until the first data chunk lands (a few RTTs is a good
  /// pace: long enough that an in-flight first chunk arrives first, so
  /// retries only fire for a genuinely lost CTS). 0 keeps the paper's
  /// single-CTS handshake.
  double cts_retry_s{0.0};
  /// Adaptive RTO (paper §4.1.1 "RTO tuning"): estimate the RTO from
  /// per-chunk acknowledgment RTT samples (RFC 6298 / Karn) instead of
  /// using the static rto_s. rto_s still seeds the initial timeout.
  bool adaptive_rto{false};
};

struct SrSenderStats {
  std::uint64_t messages{0};
  std::uint64_t chunks_sent{0};
  std::uint64_t retransmissions{0};
  std::uint64_t acks_received{0};
  std::uint64_t nacks_received{0};
};

class SrSender {
 public:
  using DoneFn = std::function<void(const Status&)>;

  /// The control link must already be connected to the receiver's link and
  /// is consumed exclusively by this sender (its receive callback is set).
  SrSender(sim::Simulator& simulator, core::Qp& qp, ControlLink& control,
           const LinkProfile& profile, SrProtoConfig config);

  /// Reliably deliver [data, data+length) into the receiver's next posted
  /// buffer. Buffer must stay alive until `done` fires.
  Status write(const std::uint8_t* data, std::size_t length, DoneFn done);

  /// Mid-flight RTO perturbation (used by the tuner and the conformance
  /// harness): replaces the static RTO for timers armed from now on.
  /// Already-armed chunk timers keep their old deadline — exactly the race
  /// the harness wants to explore. No effect while adaptive_rto is on.
  void set_static_rto(double rto_s) { config_.rto_s = rto_s; }

  const SrSenderStats& stats() const { return stats_; }

 private:
  struct MsgState {
    core::SendHandle* handle{nullptr};
    const std::uint8_t* data{nullptr};
    std::size_t length{0};
    std::size_t chunks{0};
    std::size_t acked_count{0};
    Bitmap acked;
    std::vector<sim::EventId> timers;
    // Adaptive RTO bookkeeping: last transmission time per chunk, and
    // whether the chunk was ever retransmitted (Karn's algorithm excludes
    // retransmitted chunks from RTT sampling). cts_at_s records when the
    // receiver's CTS arrived — chunks issued before it only start
    // travelling then, so RTT samples are measured from max(sent, cts).
    // retries drives per-chunk exponential backoff of the timer.
    std::vector<double> sent_at_s;
    std::vector<std::uint8_t> retries;
    Bitmap retransmitted;
    double cts_at_s{-1.0};
    double write_at_s{-1.0};  // write() sim time (completion latency)
    DoneFn done;
  };

  double current_rto_s() const {
    return config_.adaptive_rto ? estimator_.rto_s() : config_.rto_s;
  }

  void register_metrics();
  void send_chunk(MsgState& msg, std::size_t chunk, bool retransmission);
  void arm_timer(std::uint64_t msg_number, std::size_t chunk);
  void arm_all_timers(std::uint64_t msg_number);
  void on_control(const std::uint8_t* data, std::size_t length);
  void apply_ack(MsgState& msg, const ControlMessage& ack);
  void mark_acked(MsgState& msg, std::size_t chunk);
  void finish(std::uint64_t msg_number);
  void reap(core::SendHandle* handle);

  sim::Simulator& sim_;
  core::Qp& qp_;
  ControlLink& control_;
  LinkProfile profile_;
  SrProtoConfig config_;
  std::size_t chunk_bytes_;
  std::unordered_map<std::uint64_t, MsgState> messages_;
  /// Finished-message state kept for reuse: the map node and the per-chunk
  /// vectors inside it retain their capacity, so a steady stream of
  /// messages allocates nothing after the first (lossy SR is part of the
  /// zero-alloc datapath gate).
  std::unordered_map<std::uint64_t, MsgState>::node_type spare_;
  /// Decode scratch: reused per control message, capacity sticks.
  ControlMessage ctrl_scratch_;
  RttEstimator estimator_;
  Rng rng_{0x5EEDCAFE};  // retransmission-timer jitter
  SrSenderStats stats_;
  telemetry::HistogramHandle rtt_hist_;  // adaptive-RTO RTT samples
  // Tail-latency rollups: write() -> chunk acked / message finished.
  telemetry::HistogramHandle chunk_completion_hist_;
  telemetry::HistogramHandle msg_completion_hist_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies

 public:
  const RttEstimator& rtt_estimator() const { return estimator_; }
};

struct SrReceiverStats {
  std::uint64_t messages{0};
  std::uint64_t acks_sent{0};
  std::uint64_t nacks_sent{0};
};

class SrReceiver {
 public:
  using DoneFn = std::function<void(const Status&)>;

  SrReceiver(sim::Simulator& simulator, core::Qp& qp, ControlLink& control,
             const LinkProfile& profile, SrProtoConfig config);

  /// Post a buffer for the next incoming message. Fires `done` after the
  /// message is fully received and recv_complete has been issued.
  Status expect(std::uint8_t* buffer, std::size_t length,
                const verbs::MemoryRegion* mr, DoneFn done);

  const SrReceiverStats& stats() const { return stats_; }

 private:
  struct MsgState {
    core::RecvHandle* handle{nullptr};
    std::size_t chunks{0};
    DoneFn done;
    std::vector<double> last_nack_s;  // per-chunk NACK suppression
    bool complete{false};
    bool data_seen{false};  // stops the CTS retry tick
  };

  void register_metrics();
  void on_chunk_event(const core::RecvEvent& event);
  void send_ack(MsgState& msg);
  void maybe_nack(MsgState& msg, std::size_t completed_chunk);
  void ack_tick(std::uint64_t msg_number);
  void cts_tick(std::uint64_t msg_number);
  void complete(MsgState& msg, std::uint64_t msg_number);

  sim::Simulator& sim_;
  core::Qp& qp_;
  ControlLink& control_;
  LinkProfile profile_;
  SrProtoConfig config_;
  std::unordered_map<std::uint64_t, MsgState> messages_;
  /// Completed-message node kept for reuse (see SrSender::spare_).
  std::unordered_map<std::uint64_t, MsgState>::node_type spare_;
  /// ACK/NACK build + wire scratch: reused per control send so the
  /// steady-state ACK path allocates nothing.
  ControlMessage ctrl_scratch_;
  std::vector<std::uint8_t> wire_scratch_;
  SrReceiverStats stats_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

}  // namespace sdr::reliability
