#include "reliability/ec_protocol.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/logging.hpp"

namespace sdr::reliability {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

EcSender::EcSender(sim::Simulator& simulator, core::Qp& qp,
                   ControlLink& control, const LinkProfile& profile,
                   const ec::ErasureCodec& codec, EcProtoConfig config)
    : sim_(simulator),
      qp_(qp),
      control_(control),
      profile_(profile),
      codec_(codec),
      config_(config),
      chunk_bytes_(qp.attr().chunk_size) {
  assert(codec_.k() == config_.k && codec_.m() == config_.m);
  control_.set_receiver(
      [this](const std::uint8_t* d, std::size_t n) { on_control(d, n); });
  if (telemetry::enabled()) register_metrics();
}

void EcSender::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("reliability.ec.sender"));
  tele_.bind_counter("messages", &stats_.messages);
  tele_.bind_counter("data_chunks_sent", &stats_.data_chunks_sent);
  tele_.bind_counter("parity_chunks_sent", &stats_.parity_chunks_sent);
  tele_.bind_counter("fallback_retransmissions",
                     &stats_.fallback_retransmissions);
  tele_.bind_counter("ec_nacks", &stats_.ec_nacks);
  tele_.bind_gauge("inflight_messages", [this] {
    return static_cast<double>(messages_.size());
  });
  msg_completion_hist_ = tele_.histogram("msg_completion_s", 1e-6, 1e3);
}

Status EcSender::write(const std::uint8_t* data, std::size_t length,
                       DoneFn done) {
  const std::size_t sub_bytes = config_.k * chunk_bytes_;
  if (data == nullptr || length == 0 || length % sub_bytes != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EC write length must be a whole number of submessages "
                  "(k * chunk_size)");
  }
  const std::size_t L = length / sub_bytes;

  MsgState msg;
  msg.data = data;
  msg.length = length;
  msg.submessages = L;
  msg.write_at_s = sim_.now().seconds();
  msg.done = std::move(done);
  msg.parity.resize(L * config_.m * chunk_bytes_);
  msg.timers.assign(L, {});
  msg.acked.assign(L, Bitmap{});
  msg.sub_done.assign(L, false);

  // Encode all parity submessages. In a deployment this overlaps with data
  // injection on spare cores (paper §4.1.2); in virtual time it is free —
  // the real encode cost is measured by bench_fig11_ec_encode.
  std::vector<const std::uint8_t*> data_blocks(config_.k);
  std::vector<std::uint8_t*> parity_blocks(config_.m);
  for (std::size_t s = 0; s < L; ++s) {
    for (std::size_t j = 0; j < config_.k; ++j) {
      data_blocks[j] = data + (s * config_.k + j) * chunk_bytes_;
    }
    for (std::size_t t = 0; t < config_.m; ++t) {
      parity_blocks[t] = msg.parity.data() + (s * config_.m + t) * chunk_bytes_;
    }
    codec_.encode(std::span<const std::uint8_t* const>(data_blocks),
                  std::span<std::uint8_t* const>(parity_blocks),
                  chunk_bytes_);
  }

  // Data submessages: streaming sends, kept open for potential fallback
  // retransmission into the same remote buffers.
  std::uint64_t base = 0;
  for (std::size_t s = 0; s < L; ++s) {
    core::SendHandle* handle = nullptr;
    if (Status st = qp_.send_stream_start(0, false, &handle); !st) return st;
    if (s == 0) base = handle->msg_number();
    qp_.send_stream_continue(handle, data + s * sub_bytes, 0, sub_bytes);
    msg.data_handles.push_back(handle);
    sub_to_base_[handle->msg_number()] = base;
    stats_.data_chunks_sent += config_.k;
  }
  // Parity submessages: one-shot sends (never retransmitted).
  for (std::size_t s = 0; s < L; ++s) {
    core::SendHandle* handle = nullptr;
    if (Status st = qp_.send_post(msg.parity.data() + s * config_.m * chunk_bytes_,
                                  config_.m * chunk_bytes_, 0, false, &handle);
        !st) {
      return st;
    }
    msg.parity_handles.push_back(handle);
    reap(handle);  // parity contexts are destroyed as soon as injected
    stats_.parity_chunks_sent += config_.m;
  }

  ++stats_.messages;
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kEc,
                               qp_.control_qp_num(), "write", sim_.now(), base,
                               length, L);
  }
  messages_.emplace(base, std::move(msg));
  return Status::ok();
}

void EcSender::on_control(const std::uint8_t* data, std::size_t length) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
  const auto parsed = decode_control(data, length);
  if (!parsed) return;
  const ControlMessage& ctl = *parsed;

  switch (ctl.type) {
    case ControlType::kEcAck: {
      finish(ctl.msg_number);
      break;
    }
    case ControlType::kEcNack: {
      const auto it = messages_.find(ctl.msg_number);
      if (it == messages_.end()) return;
      ++stats_.ec_nacks;
      enter_fallback(it->second, ctl.msg_number, ctl.indices);
      break;
    }
    case ControlType::kSrAck: {
      // Fallback per-submessage ACK: msg_number is the submessage's own.
      const auto bit = sub_to_base_.find(ctl.msg_number);
      if (bit == sub_to_base_.end()) return;
      const std::uint64_t base = bit->second;
      const auto it = messages_.find(base);
      if (it == messages_.end()) return;
      const std::size_t sub = static_cast<std::size_t>(ctl.msg_number - base);
      apply_fallback_ack(it->second, base, sub, ctl);
      break;
    }
    default:
      break;
  }
}

void EcSender::enter_fallback(MsgState& msg, std::uint64_t base,
                              const std::vector<std::uint32_t>& failed) {
  for (std::uint32_t sub : failed) {
    if (sub >= msg.submessages || msg.sub_done[sub]) continue;
    if (!msg.timers[sub].empty()) continue;  // already in fallback
    if (telemetry::tracing()) {
      telemetry::tracer().emit(sim_.now(),
                               telemetry::TraceEventType::kEcFallback, 0,
                               base, sub);
    }
    if (telemetry::spanning()) {
      telemetry::spans().on_instant(sim_.now(),
                                    telemetry::TraceEventType::kEcFallback,
                                    base, sub);
    }
    if (telemetry::flight_recording()) {
      telemetry::flight().record(telemetry::FlightLayer::kEc,
                                 qp_.control_qp_num(), "enter_fallback",
                                 sim_.now(), base, sub, config_.k);
    }
    msg.acked[sub].resize(config_.k);
    msg.timers[sub].assign(config_.k, sim::EventId{});
    ++msg.subs_pending_fallback;
    for (std::size_t c = 0; c < config_.k; ++c) {
      fallback_send(msg, base, sub, c, /*retransmission=*/true);
      arm_fallback_timer(base, sub, c);
    }
  }
}

void EcSender::fallback_send(MsgState& msg, std::uint64_t base,
                             std::size_t sub, std::size_t chunk,
                             bool retransmission) {
  (void)base;
  const std::size_t sub_bytes = config_.k * chunk_bytes_;
  const std::uint8_t* src = msg.data + sub * sub_bytes + chunk * chunk_bytes_;
  qp_.send_stream_continue(msg.data_handles[sub], src, chunk * chunk_bytes_,
                           chunk_bytes_);
  if (retransmission) {
    ++stats_.fallback_retransmissions;
    if (telemetry::tracing()) {
      telemetry::tracer().emit(sim_.now(),
                               telemetry::TraceEventType::kRetransmit, 0,
                               msg.data_handles[sub]->msg_number(),
                               static_cast<std::uint32_t>(chunk),
                               telemetry::kNoImm, chunk_bytes_);
    }
    if (telemetry::spanning()) {
      telemetry::spans().on_retransmit(sim_.now(),
                                       msg.data_handles[sub]->msg_number(),
                                       static_cast<std::uint32_t>(chunk),
                                       chunk_bytes_);
    }
    if (telemetry::flight_recording()) {
      telemetry::flight().record(telemetry::FlightLayer::kEc,
                                 qp_.control_qp_num(), "retransmit",
                                 sim_.now(),
                                 msg.data_handles[sub]->msg_number(), sub,
                                 chunk);
    }
  }
}

void EcSender::arm_fallback_timer(std::uint64_t base, std::size_t sub,
                                  std::size_t chunk) {
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  it->second.timers[sub][chunk] = sim_.schedule(
      SimTime::from_seconds(config_.fallback_rto_s),
      [this, base, sub, chunk] {
        telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
        const auto mit = messages_.find(base);
        if (mit == messages_.end()) return;
        MsgState& m = mit->second;
        if (m.sub_done[sub] || m.acked[sub].test(chunk)) return;
        fallback_send(m, base, sub, chunk, /*retransmission=*/true);
        arm_fallback_timer(base, sub, chunk);
      });
}

void EcSender::apply_fallback_ack(MsgState& msg, std::uint64_t base,
                                  std::size_t sub,
                                  const ControlMessage& ack) {
  (void)base;
  if (sub >= msg.submessages || msg.sub_done[sub]) return;
  if (msg.acked[sub].size() == 0) {
    // ACK for a submessage that never entered fallback (e.g. the receiver
    // recovered it after our NACK raced its parity) — nothing to cancel.
    return;
  }
  const std::size_t cumulative =
      std::min<std::size_t>(ack.cumulative, config_.k);
  auto mark = [&](std::size_t c) {
    if (msg.acked[sub].test(c)) return;
    msg.acked[sub].set(c);
    if (msg.timers[sub][c].valid()) {
      sim_.cancel(msg.timers[sub][c]);
      msg.timers[sub][c] = {};
    }
  };
  for (std::size_t c = 0; c < cumulative; ++c) mark(c);
  // Word scan: countr_zero hops between acked chunks instead of testing
  // all 64 bit positions per selective word.
  for (std::size_t w = 0; w < ack.selective.size(); ++w) {
    std::uint64_t word = ack.selective[w];
    const std::size_t word_base = ack.selective_base + w * 64;
    while (word != 0) {
      const std::size_t c =
          word_base + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      if (c < config_.k) mark(c);
    }
  }
  if (msg.acked[sub].all_set()) {
    msg.sub_done[sub] = true;
    if (msg.subs_pending_fallback > 0) --msg.subs_pending_fallback;
  }
}

void EcSender::finish(std::uint64_t base) {
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  MsgState msg = std::move(it->second);
  messages_.erase(it);
  if (msg_completion_hist_.live() && msg.write_at_s >= 0.0) {
    msg_completion_hist_.record(sim_.now().seconds() - msg.write_at_s);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kEc,
                               qp_.control_qp_num(), "msg_done", sim_.now(),
                               base, msg.submessages,
                               stats_.fallback_retransmissions);
  }
  for (std::size_t s = 0; s < msg.submessages; ++s) {
    for (sim::EventId id : msg.timers[s]) {
      if (id.valid()) sim_.cancel(id);
    }
    sub_to_base_.erase(msg.data_handles[s]->msg_number());
    // A stream whose CTS never arrived has everything still queued; the
    // receiver completed without it (parity recovery), so it will never
    // drain — release it instead of reap-polling it forever.
    if (!msg.data_handles[s]->cts_ready()) {
      qp_.send_abort(msg.data_handles[s]);
      continue;
    }
    qp_.send_stream_end(msg.data_handles[s]);
    reap(msg.data_handles[s]);
  }
  for (std::size_t s = 0; s < msg.submessages; ++s) {
    // Parity one-shots self-reap once injected; a CTS-less one never will.
    // A reaped handle may already carry a newer message (the slot pool
    // recycles), so only touch it if it still holds our number (parity
    // numbers follow the data numbers: base + submessages + s).
    core::SendHandle* parity = msg.parity_handles[s];
    if (parity->msg_number() != base + msg.submessages + s) continue;
    if (parity->cts_ready()) continue;
    qp_.send_abort(parity);
  }
  if (msg.done) msg.done(Status::ok());
}

void EcSender::reap(core::SendHandle* handle) {
  if (qp_.send_poll(handle).code() == StatusCode::kNotReady) {
    sim_.schedule(SimTime::from_micros(10), [this, handle] { reap(handle); });
  }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

EcReceiver::EcReceiver(sim::Simulator& simulator, core::Qp& qp,
                       ControlLink& control, const LinkProfile& profile,
                       const ec::ErasureCodec& codec, EcProtoConfig config)
    : sim_(simulator),
      qp_(qp),
      control_(control),
      profile_(profile),
      codec_(codec),
      config_(config),
      chunk_bytes_(qp.attr().chunk_size) {
  qp_.set_recv_event_handler(
      [this](const core::RecvEvent& event) { on_chunk_event(event); });
  if (telemetry::enabled()) register_metrics();
}

void EcReceiver::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("reliability.ec.receiver"));
  tele_.bind_counter("messages", &stats_.messages);
  tele_.bind_counter("decoded_submessages", &stats_.decoded_submessages);
  tele_.bind_counter("clean_submessages", &stats_.clean_submessages);
  tele_.bind_counter("fallback_submessages", &stats_.fallback_submessages);
  tele_.bind_counter("ec_nacks_sent", &stats_.ec_nacks_sent);
  tele_.bind_counter("ftos_fired", &stats_.ftos_fired);
  tele_.bind_gauge("inflight_messages", [this] {
    return static_cast<double>(messages_.size());
  });
  chunk_completion_hist_ = tele_.histogram("chunk_completion_s", 1e-6, 1e3);
  msg_completion_hist_ = tele_.histogram("msg_completion_s", 1e-6, 1e3);
}

Status EcReceiver::expect(std::uint8_t* buffer, std::size_t length,
                          const verbs::MemoryRegion* mr, DoneFn done) {
  const std::size_t sub_bytes = config_.k * chunk_bytes_;
  if (buffer == nullptr || length == 0 || length % sub_bytes != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EC receive length must be a whole number of submessages");
  }
  const std::size_t L = length / sub_bytes;

  MsgState msg;
  msg.buffer = buffer;
  msg.length = length;
  msg.submessages = L;
  msg.posted_at_s = sim_.now().seconds();
  msg.done = std::move(done);
  msg.sub_recovered.assign(L, false);
  msg.parity_scratch.resize(L * config_.m * chunk_bytes_);
  msg.parity_mr =
      qp_.context().mr_reg(msg.parity_scratch.data(), msg.parity_scratch.size());

  // Post order must mirror the sender's send order: data 0..L-1, parity
  // 0..L-1 (SDR matching is order-based).
  std::uint64_t base = 0;
  for (std::size_t s = 0; s < L; ++s) {
    core::RecvHandle* handle = nullptr;
    if (Status st = qp_.recv_post(buffer + s * sub_bytes, sub_bytes, mr,
                                  &handle);
        !st) {
      return st;
    }
    if (s == 0) base = handle->msg_number();
    msg.data_handles.push_back(handle);
  }
  for (std::size_t s = 0; s < L; ++s) {
    core::RecvHandle* handle = nullptr;
    if (Status st = qp_.recv_post(
            msg.parity_scratch.data() + s * config_.m * chunk_bytes_,
            config_.m * chunk_bytes_, msg.parity_mr, &handle);
        !st) {
      return st;
    }
    msg.parity_handles.push_back(handle);
  }
  for (std::size_t s = 0; s < L; ++s) {
    handle_to_base_[msg.data_handles[s]->msg_number()] = base;
    handle_to_base_[msg.parity_handles[s]->msg_number()] = base;
  }

  if (config_.cts_retry_s > 0.0) {
    sim_.schedule(SimTime::from_seconds(config_.cts_retry_s),
                  [this, base] { cts_tick(base); });
  }

  // Global deadlock-prevention timeout (armed at posting).
  const double wire_chunks =
      static_cast<double>(length / chunk_bytes_) *
      (1.0 + static_cast<double>(config_.m) / static_cast<double>(config_.k));
  const double fto_s =
      wire_chunks * profile_.chunk_injection_s() + config_.beta * profile_.rtt_s;
  msg.global_timer = sim_.schedule(
      SimTime::from_seconds(config_.global_timeout_factor *
                            (fto_s + profile_.rtt_s)),
      [this, base] {
        const auto it = messages_.find(base);
        if (it == messages_.end() || it->second.complete) return;
        MsgState& m = it->second;
        m.complete = true;
        if (m.fto_timer.valid()) sim_.cancel(m.fto_timer);
        if (m.ack_timer.valid()) sim_.cancel(m.ack_timer);
        for (auto* h : m.data_handles) qp_.recv_complete(h);
        for (auto* h : m.parity_handles) qp_.recv_complete(h);
        DoneFn cb = std::move(m.done);
        for (auto* h : m.data_handles) handle_to_base_.erase(h->msg_number());
        for (auto* h : m.parity_handles)
          handle_to_base_.erase(h->msg_number());
        messages_.erase(it);
        if (cb) cb(Status(StatusCode::kAborted, "EC global timeout"));
      });

  // FTO armed at posting, not on first chunk arrival: a loss burst that
  // eats every packet of the message (data and parity) would otherwise
  // leave the receiver silent and the sender waiting forever — the global
  // timeout would be the only way out.
  arm_fto(msg, base);

  ++stats_.messages;
  messages_.emplace(base, std::move(msg));
  return Status::ok();
}

void EcReceiver::on_chunk_event(const core::RecvEvent& event) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
  const auto bit = handle_to_base_.find(event.handle->msg_number());
  if (bit == handle_to_base_.end()) return;
  const std::uint64_t base = bit->second;
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  if (msg.complete) return;

  // Which submessage does this event concern?
  const std::uint64_t idx = event.handle->msg_number() - base;
  const std::size_t sub = idx < msg.submessages
                              ? static_cast<std::size_t>(idx)
                              : static_cast<std::size_t>(idx - msg.submessages);
  if (sub >= msg.submessages || msg.sub_recovered[sub]) return;

  if (submessage_recoverable(msg, sub) && try_recover(msg, sub)) {
    msg.sub_recovered[sub] = true;
    ++msg.subs_recovered;
    if (chunk_completion_hist_.live() && msg.posted_at_s >= 0.0) {
      chunk_completion_hist_.record(sim_.now().seconds() - msg.posted_at_s);
    }
    if (telemetry::flight_recording()) {
      telemetry::flight().record(telemetry::FlightLayer::kEc,
                                 qp_.control_qp_num(), "sub_recovered",
                                 sim_.now(), base, sub, msg.subs_recovered,
                                 msg.submessages);
    }
    if (msg.fallback) {
      // Tell the sender to stop retransmitting this submessage.
      ControlMessage& ack = ctrl_scratch_;
      reset_control(ack, ControlType::kSrAck,
                    msg.data_handles[sub]->msg_number());
      ack.cumulative = static_cast<std::uint32_t>(config_.k);
      encode_control(ack, wire_scratch_);
      control_.send(wire_scratch_.data(), wire_scratch_.size());
    }
    check_message(msg, base);
  }
}

bool EcReceiver::submessage_recoverable(const MsgState& msg,
                                        std::size_t sub) const {
  ec::PresenceMap present(config_.k + config_.m, false);
  const AtomicBitmap* data_bits = nullptr;
  const AtomicBitmap* parity_bits = nullptr;
  qp_.recv_bitmap_get(msg.data_handles[sub], &data_bits);
  qp_.recv_bitmap_get(msg.parity_handles[sub], &parity_bits);
  if (data_bits == nullptr || parity_bits == nullptr) return false;
  for (std::size_t j = 0; j < config_.k; ++j) present[j] = data_bits->test(j);
  for (std::size_t t = 0; t < config_.m; ++t) {
    present[config_.k + t] = parity_bits->test(t);
  }
  return codec_.can_recover(present);
}

bool EcReceiver::try_recover(MsgState& msg, std::size_t sub) {
  ec::PresenceMap present(config_.k + config_.m, false);
  const AtomicBitmap* data_bits = nullptr;
  const AtomicBitmap* parity_bits = nullptr;
  qp_.recv_bitmap_get(msg.data_handles[sub], &data_bits);
  qp_.recv_bitmap_get(msg.parity_handles[sub], &parity_bits);
  bool all_data = true;
  for (std::size_t j = 0; j < config_.k; ++j) {
    present[j] = data_bits->test(j);
    all_data = all_data && present[j];
  }
  if (all_data) {
    ++stats_.clean_submessages;
    return true;
  }
  for (std::size_t t = 0; t < config_.m; ++t) {
    present[config_.k + t] = parity_bits->test(t);
  }
  std::vector<std::uint8_t*> blocks(config_.k + config_.m);
  const std::size_t sub_bytes = config_.k * chunk_bytes_;
  for (std::size_t j = 0; j < config_.k; ++j) {
    blocks[j] = msg.buffer + sub * sub_bytes + j * chunk_bytes_;
  }
  for (std::size_t t = 0; t < config_.m; ++t) {
    blocks[config_.k + t] =
        msg.parity_scratch.data() + (sub * config_.m + t) * chunk_bytes_;
  }
  if (!codec_.decode(std::span<std::uint8_t* const>(blocks), present,
                     chunk_bytes_)) {
    return false;
  }
  ++stats_.decoded_submessages;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kEcRepair,
                             0, msg.data_handles[sub]->msg_number(),
                             static_cast<std::uint32_t>(sub));
  }
  if (telemetry::spanning()) {
    telemetry::spans().on_instant(sim_.now(),
                                  telemetry::TraceEventType::kEcRepair,
                                  msg.data_handles[sub]->msg_number(),
                                  static_cast<std::uint32_t>(sub));
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kEc,
                               qp_.control_qp_num(), "ec_repair", sim_.now(),
                               msg.data_handles[sub]->msg_number(), sub);
  }
  return true;
}

void EcReceiver::check_message(MsgState& msg, std::uint64_t base) {
  if (msg.subs_recovered == msg.submessages) complete(msg, base);
}

void EcReceiver::arm_fto(MsgState& msg, std::uint64_t base) {
  msg.fto_armed = true;
  const double wire_chunks =
      static_cast<double>(msg.length / chunk_bytes_) *
      (1.0 + static_cast<double>(config_.m) / static_cast<double>(config_.k));
  // + 2 RTT of slack: the timer now starts at posting, before the
  // RTS/CTS handshake and the first injected byte.
  const double fto_s = wire_chunks * profile_.chunk_injection_s() +
                       config_.beta * profile_.rtt_s + 2.0 * profile_.rtt_s;
  msg.fto_timer = sim_.schedule(SimTime::from_seconds(fto_s),
                                [this, base] { on_fto(base); });
}

void EcReceiver::on_fto(std::uint64_t base) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  if (msg.complete) return;
  ++stats_.ftos_fired;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(sim_.now(), telemetry::TraceEventType::kRtoFired,
                             0, base);
  }
  if (telemetry::spanning()) {
    telemetry::spans().on_rto(sim_.now(), base, telemetry::kNoChunk);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kEc,
                               qp_.control_qp_num(), "fto_fired", sim_.now(),
                               base, msg.submessages - msg.subs_recovered,
                               stats_.ftos_fired);
  }
  const bool first_fire = !msg.fallback;
  msg.fallback = true;
  if (msg.sub_nacked.empty()) msg.sub_nacked.assign(msg.submessages, false);

  ControlMessage& nack = ctrl_scratch_;
  reset_control(nack, ControlType::kEcNack, base);
  for (std::size_t s = 0; s < msg.submessages && nack.indices.size() < 512;
       ++s) {
    if (!msg.sub_recovered[s]) {
      nack.indices.push_back(static_cast<std::uint32_t>(s));
      if (!msg.sub_nacked[s]) {
        msg.sub_nacked[s] = true;
        ++stats_.fallback_submessages;
      }
    }
  }
  if (nack.indices.empty()) return;
  encode_control(nack, wire_scratch_);
  control_.send(wire_scratch_.data(), wire_scratch_.size());
  ++stats_.ec_nacks_sent;
  // Keep refiring while submessages are outstanding: the NACK itself (or
  // the sender's entire first transmission) can be lost, and the sender
  // may not even have posted the message yet.
  arm_fto(msg, base);
  if (first_fire) fallback_ack_tick(base);
}

void EcReceiver::cts_tick(std::uint64_t base) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  if (msg.complete) return;
  // Re-CTS every stream that has produced nothing: either its CTS was
  // lost (the sender's chunks sit queued until one lands) or the stream
  // itself is still in flight — the retry pace is several RTTs, so an
  // in-flight first chunk wins the race and the duplicate never sends.
  bool silent = false;
  for (core::RecvHandle* h : msg.data_handles) {
    if (qp_.recv_packets(h) != 0) continue;
    qp_.resend_cts(h);
    silent = true;
  }
  for (core::RecvHandle* h : msg.parity_handles) {
    if (qp_.recv_packets(h) != 0) continue;
    qp_.resend_cts(h);
    silent = true;
  }
  if (!silent) return;  // every stream has started; nothing left to nudge
  sim_.schedule(SimTime::from_seconds(config_.cts_retry_s),
                [this, base] { cts_tick(base); });
}

void EcReceiver::fallback_ack_tick(std::uint64_t base) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kEc);
  const auto it = messages_.find(base);
  if (it == messages_.end()) return;
  MsgState& msg = it->second;
  if (msg.complete) return;
  send_fallback_acks(msg, base);
  msg.ack_timer =
      sim_.schedule(SimTime::from_seconds(config_.fallback_ack_interval_s),
                    [this, base] { fallback_ack_tick(base); });
}

void EcReceiver::send_fallback_acks(MsgState& msg, std::uint64_t base) {
  (void)base;
  for (std::size_t s = 0; s < msg.submessages; ++s) {
    if (msg.sub_recovered[s]) continue;
    const AtomicBitmap* bits = nullptr;
    qp_.recv_bitmap_get(msg.data_handles[s], &bits);
    if (bits == nullptr) continue;
    ControlMessage& ack = ctrl_scratch_;
    reset_control(ack, ControlType::kSrAck,
                  msg.data_handles[s]->msg_number());
    ack.cumulative = static_cast<std::uint32_t>(bits->first_zero(config_.k));
    ack.selective_base = 0;
    ack.selective.reserve(bitmap_words(config_.k));
    for (std::size_t w = 0; w < bitmap_words(config_.k); ++w) {
      ack.selective.push_back(bits->load_word(w));
    }
    encode_control(ack, wire_scratch_);
    control_.send(wire_scratch_.data(), wire_scratch_.size());
  }
}

void EcReceiver::complete(MsgState& msg, std::uint64_t base) {
  msg.complete = true;
  if (msg_completion_hist_.live() && msg.posted_at_s >= 0.0) {
    msg_completion_hist_.record(sim_.now().seconds() - msg.posted_at_s);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kEc,
                               qp_.control_qp_num(), "msg_complete",
                               sim_.now(), base, msg.submessages,
                               stats_.decoded_submessages);
  }
  if (msg.fto_timer.valid()) sim_.cancel(msg.fto_timer);
  if (msg.global_timer.valid()) sim_.cancel(msg.global_timer);
  if (msg.ack_timer.valid()) sim_.cancel(msg.ack_timer);

  ControlMessage& ack = ctrl_scratch_;
  reset_control(ack, ControlType::kEcAck, base);
  encode_control(ack, wire_scratch_);
  control_.send(wire_scratch_.data(), wire_scratch_.size());
  for (std::size_t r = 1; r < config_.final_ack_repeats; ++r) {
    // Init-capture copies the scratch: the repeat fires after the scratch
    // has been reused, and a const member would degrade the event's
    // relocation to a copy (InlineFunction requires nothrow moves).
    sim_.schedule(
        SimTime::from_seconds(config_.fallback_ack_interval_s *
                              static_cast<double>(r)),
        [this, ack_wire = wire_scratch_] {
          control_.send(ack_wire.data(), ack_wire.size());
        });
  }

  for (auto* h : msg.data_handles) {
    handle_to_base_.erase(h->msg_number());
    qp_.recv_complete(h);
  }
  for (auto* h : msg.parity_handles) {
    handle_to_base_.erase(h->msg_number());
    qp_.recv_complete(h);
  }
  DoneFn done = std::move(msg.done);
  messages_.erase(base);
  if (done) done(Status::ok());
}

}  // namespace sdr::reliability
