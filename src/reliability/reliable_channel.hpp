// ReliableChannel: a unidirectional reliable Write pipe between two NICs,
// bundling the full two-connection design of paper §4.1 — an SDR data-path
// QP pair plus a UD control-path link — under a chosen reliability scheme.
// This is the composition layer examples and the executable collectives use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/status.hpp"
#include "ec/codec.hpp"
#include "reliability/control_link.hpp"
#include "reliability/ec_protocol.hpp"
#include "reliability/profile.hpp"
#include "model/protocols.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"

namespace sdr::reliability {

class ReliableChannel {
 public:
  /// kAuto is the §5.2 "guided choice" automated per message: the channel
  /// hosts BOTH an SR and an EC stack (two SDR QP pairs on the same NICs)
  /// and routes every message to the scheme the completion-time model
  /// predicts is faster for its size — both endpoints classify by length,
  /// so order-based matching stays consistent without negotiation.
  enum class Kind { kSrRto, kSrNack, kEcMds, kEcXor, kAuto };

  struct Options {
    Kind kind{Kind::kSrRto};
    LinkProfile profile{};
    core::QpAttr attr{};
    SrProtoConfig sr{};
    EcProtoConfig ec{};

    /// Eager small-message path (the §4.1 rendezvous-vs-eager freedom,
    /// citing [43]): messages up to this many bytes ride the control-path
    /// datagram directly, skipping the SDR CTS round trip. 0 disables.
    /// Bounded by the control datagram size (~4000 B of payload).
    std::size_t eager_threshold_bytes{0};
    /// Eager retransmission timeout (stop-and-wait); derived as 1.5 RTT.
    double eager_rto_s{0.05};

    /// Pre-posted control-path datagram buffers per ControlLink. The
    /// default suits a single heavily pipelined channel; fleet scenarios
    /// with hundreds of channels shrink it (each buffer is a ~4 KiB
    /// allocation, two links per channel).
    std::size_t control_recv_buffers{256};

    /// Derive protocol timeouts from the link profile (RTO = 3 RTT for the
    /// RTO scheme, 1.2 RTT with NACK; paper §5.1.1).
    void derive_timeouts();
  };

  using DoneFn = std::function<void(const Status&)>;

  /// `src` and `dst` NICs must already be routed to each other through
  /// simulator channels.
  ReliableChannel(sim::Simulator& simulator, verbs::Nic& src, verbs::Nic& dst,
                  Options options);
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Reliable Write of [data, data+length). Buffer must outlive `done`.
  Status send(const std::uint8_t* data, std::size_t length, DoneFn done);

  /// Post the matching receive. For EC kinds, `length` must be a whole
  /// number of submessages.
  Status recv(std::uint8_t* buffer, std::size_t length, DoneFn done);

  const Options& options() const { return options_; }
  std::uint64_t retransmissions() const;
  std::uint64_t eager_messages() const { return eager_completed_; }

 private:
  const verbs::MemoryRegion* recv_mr(std::uint8_t* buffer, std::size_t length);

  // ---- eager small-message path ----
  Status eager_send(const std::uint8_t* data, std::size_t length,
                    DoneFn done);
  Status eager_recv(std::uint8_t* buffer, std::size_t length, DoneFn done);
  void eager_transmit(std::uint64_t id);
  void on_src_control(const std::uint8_t* data, std::size_t length);
  void on_dst_control(const std::uint8_t* data, std::size_t length);

  struct EagerSend {
    std::vector<std::uint8_t> payload;
    DoneFn done;
    sim::EventId timer{};
    int attempts{0};
  };
  struct EagerRecv {
    std::uint8_t* buffer{nullptr};
    std::size_t length{0};
    DoneFn done;
  };
  std::uint64_t eager_send_seq_{0};
  std::uint64_t eager_recv_seq_{0};
  std::uint64_t eager_completed_{0};
  std::map<std::uint64_t, EagerSend> eager_sends_;
  std::map<std::uint64_t, EagerRecv> eager_recvs_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> eager_stash_;
  // Reused eager encode scratch (same pattern as Sr/EcReceiver).
  ControlMessage ctrl_scratch_;
  std::vector<std::uint8_t> wire_scratch_;
  ControlLink::ReceiveFn protocol_src_handler_;

  // ---- kAuto: a second (EC) stack and the model-guided router ----
  bool auto_use_ec(std::size_t length);
  std::unique_ptr<ReliableChannel> auto_ec_;  // EC stack on its own QPs
  std::map<std::size_t, bool> auto_choice_cache_;  // size bucket -> EC?

 public:
  std::uint64_t auto_ec_messages() const { return auto_ec_count_; }
  std::uint64_t auto_sr_messages() const { return auto_sr_count_; }

 private:
  std::uint64_t auto_ec_count_{0};
  std::uint64_t auto_sr_count_{0};

  sim::Simulator& sim_;
  Options options_;
  std::unique_ptr<core::Context> src_ctx_;
  std::unique_ptr<core::Context> dst_ctx_;
  core::Qp* src_qp_{nullptr};
  core::Qp* dst_qp_{nullptr};
  std::unique_ptr<ControlLink> src_control_;  // sender side (receives ACKs)
  std::unique_ptr<ControlLink> dst_control_;  // receiver side (sends ACKs)
  std::unique_ptr<ec::ErasureCodec> codec_;
  std::unique_ptr<SrSender> sr_sender_;
  std::unique_ptr<SrReceiver> sr_receiver_;
  std::unique_ptr<EcSender> ec_sender_;
  std::unique_ptr<EcReceiver> ec_receiver_;
  // Registration cache: the collective re-posts the same buffers each step.
  std::map<std::pair<std::uint8_t*, std::size_t>,
           const verbs::MemoryRegion*> mr_cache_;
};

}  // namespace sdr::reliability
