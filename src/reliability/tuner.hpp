// Guided reliability-scheme selection (paper §5.2: "the guided choice and
// performance tuning of an optimal reliability algorithm can improve average
// and 99.9th percentile Write completion time by up to 5x and 12x").
//
// Given a deployment profile (bandwidth, RTT, drop rate, chunking) and a
// message size, the tuner evaluates the completion-time model for every
// candidate scheme and recommends the minimum-cost one, together with the
// concrete protocol parameters (RTO, EC split, FTO slack) an application
// should configure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/protocols.hpp"
#include "reliability/profile.hpp"

namespace sdr::reliability {

struct Candidate {
  model::Scheme scheme;
  model::SchemeParams params;
  double expected_s{0.0};
  double p999_s{0.0};
  double slowdown_vs_ideal{0.0};
};

struct Recommendation {
  Candidate best;
  std::vector<Candidate> ranked;  // all candidates, best first
  std::string rationale;
};

struct TunerOptions {
  /// EC splits to consider (paper Fig 10d evaluates several; (32,8) is the
  /// balanced default).
  std::vector<std::pair<std::size_t, std::size_t>> ec_splits{
      {32, 4}, {32, 8}, {16, 8}, {8, 8}};
  bool consider_nack{true};
  bool consider_xor{true};
  /// Samples for tail estimation; 0 disables (expectation-only ranking).
  std::uint64_t tail_samples{2000};
  std::uint64_t seed{0x7a11f00dULL};
  /// Rank by this percentile weight: cost = mean + tail_weight * p99.9.
  double tail_weight{0.0};
};

Recommendation recommend(const LinkProfile& profile, std::size_t message_bytes,
                         const TunerOptions& options = TunerOptions{});

}  // namespace sdr::reliability
