// Parameter grids for the deterministic sweep engine.
//
// A ParamGrid is the cartesian product of named, typed axes — exactly the
// shape of the paper's evaluation: Fig 9's message-size x drop-rate heatmap,
// Fig 12's distance x bandwidth grid, the §5.1.1 (size, drop, scheme)
// validation lattice. Cells are addressed by a single linear index with the
// LAST axis varying fastest, so iterating indices 0..size()-1 visits cells
// in the same order as the nested for-loops the serial benches used — the
// aggregator's "identical to serial emit order" guarantee rests on this.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace sdr::sweep {

/// One typed axis value. The variant is deliberately small: everything the
/// benches sweep is an integer (bytes, chunks, threads), a real (drop rate,
/// bandwidth), a name (scheme), or a switch (bursty on/off).
using ParamValue = std::variant<std::int64_t, double, std::string, bool>;

/// Renders a value the way the aggregator serializes it: integers as
/// decimal, doubles with "%.10g" (matching telemetry exports), bools as
/// true/false, strings verbatim.
std::string to_string(const ParamValue& value);

/// Same, but a valid JSON token (strings quoted and escaped).
std::string to_json(const ParamValue& value);

struct Axis {
  std::string name;
  std::vector<ParamValue> values;
};

/// One materialized grid cell: the (name, value) pairs of every axis at
/// this cell's coordinates, plus the cell's linear index.
class ParamPoint {
 public:
  ParamPoint() = default;
  ParamPoint(std::size_t index,
             std::vector<std::pair<std::string, ParamValue>> entries)
      : index_(index), entries_(std::move(entries)) {}

  std::size_t index() const { return index_; }
  std::size_t size() const { return entries_.size(); }
  const std::pair<std::string, ParamValue>& at(std::size_t i) const {
    return entries_[i];
  }
  bool has(const std::string& name) const { return find(name) != nullptr; }

  /// Typed getters; throw std::out_of_range on a missing name and
  /// std::bad_variant_access on a type mismatch — a sweep over a mistyped
  /// axis should fail loudly (and be captured per trial), not read garbage.
  std::int64_t i64(const std::string& name) const {
    return std::get<std::int64_t>(value(name));
  }
  double f64(const std::string& name) const {
    return std::get<double>(value(name));
  }
  const std::string& str(const std::string& name) const {
    return std::get<std::string>(value(name));
  }
  bool flag(const std::string& name) const {
    return std::get<bool>(value(name));
  }

  const ParamValue& value(const std::string& name) const {
    const ParamValue* v = find(name);
    if (v == nullptr) {
      throw std::out_of_range("ParamPoint: no axis named \"" + name + "\"");
    }
    return *v;
  }

  /// "bytes=65536 p_drop=1e-05" — deterministic axis order.
  std::string to_string() const;
  /// {"bytes":65536,"p_drop":1e-05} — deterministic axis order.
  std::string to_json() const;

 private:
  const ParamValue* find(const std::string& name) const {
    for (const auto& [key, val] : entries_) {
      if (key == name) return &val;
    }
    return nullptr;
  }

  std::size_t index_{0};
  std::vector<std::pair<std::string, ParamValue>> entries_;
};

class ParamGrid {
 public:
  /// Axes are swept with the LAST added axis varying fastest (row-major),
  /// mirroring nested loops where the first axis is the outermost.
  ParamGrid& axis(std::string name, std::vector<ParamValue> values) {
    axes_.push_back(Axis{std::move(name), std::move(values)});
    return *this;
  }
  ParamGrid& axis_i64(std::string name, std::vector<std::int64_t> values) {
    return axis_typed(std::move(name), std::move(values));
  }
  ParamGrid& axis_f64(std::string name, std::vector<double> values) {
    return axis_typed(std::move(name), std::move(values));
  }
  ParamGrid& axis_str(std::string name, std::vector<std::string> values) {
    return axis_typed(std::move(name), std::move(values));
  }
  ParamGrid& axis_flag(std::string name, std::vector<bool> values) {
    Axis a{std::move(name), {}};
    a.values.reserve(values.size());
    for (const bool v : values) a.values.emplace_back(v);
    axes_.push_back(std::move(a));
    return *this;
  }

  std::size_t axes() const { return axes_.size(); }
  const Axis& axis_at(std::size_t i) const { return axes_[i]; }

  /// Number of cells: the product of axis lengths. A grid with no axes or
  /// with any empty axis has zero cells — an empty sweep, not an error.
  std::size_t size() const {
    if (axes_.empty()) return 0;
    std::size_t n = 1;
    for (const Axis& a : axes_) n *= a.values.size();
    return n;
  }

  /// Materialize cell `index` (0 <= index < size()).
  ParamPoint point(std::size_t index) const {
    std::vector<std::pair<std::string, ParamValue>> entries;
    entries.reserve(axes_.size());
    std::size_t rest = index;
    // Peel from the last (fastest) axis; build entries in axis order.
    std::vector<std::size_t> coords(axes_.size(), 0);
    for (std::size_t i = axes_.size(); i-- > 0;) {
      const std::size_t len = axes_[i].values.size();
      coords[i] = rest % len;
      rest /= len;
    }
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      entries.emplace_back(axes_[i].name, axes_[i].values[coords[i]]);
    }
    return ParamPoint{index, std::move(entries)};
  }

 private:
  template <class T>
  ParamGrid& axis_typed(std::string name, std::vector<T> values) {
    Axis a{std::move(name), {}};
    a.values.reserve(values.size());
    for (auto& v : values) a.values.emplace_back(std::move(v));
    axes_.push_back(std::move(a));
    return *this;
  }

  std::vector<Axis> axes_;
};

}  // namespace sdr::sweep
