// Deterministic parallel sweep engine.
//
// Runs every cell of a ParamGrid as an isolated Trial on a fixed-size
// worker pool and aggregates the results in grid order. The contract that
// makes parallelism safe to adopt everywhere:
//
//   bit-identical results at any --jobs value.
//
// It holds because a trial's observable behaviour depends only on
// (params, seed) — the seed is derive_seed(base_seed, index), never a
// function of which worker ran it or when — and because each trial gets a
// fully private telemetry Registry+Tracer (installed thread-locally via
// ScopedTelemetry) so no shared-global state can cross-wire concurrent
// trials. The aggregator then emits JSONL/CSV strictly in trial-index
// order, i.e. exactly the order the old serial bench loops printed.
//
// Failure isolation: a throwing trial is caught, recorded, and retried
// once (configurable); it never takes down the pool or the other trials.
// Wall-clock timings are kept per trial for reporting but deliberately
// excluded from to_jsonl()/to_csv() — they are the one nondeterministic
// quantity and must not break bit-identity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sweep/param_grid.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::sweep {

struct SweepOptions {
  /// Worker threads. 1 runs inline on the calling thread (through the same
  /// per-trial isolation path as the parallel mode); 0 means
  /// std::thread::hardware_concurrency().
  unsigned jobs{1};

  /// Per-trial seeds are derive_seed(base_seed, trial_index).
  std::uint64_t base_seed{0x5EED5EED5EED5EEDULL};

  /// kDynamic hands trial indices to workers from a shared atomic cursor
  /// (best load balance for uneven trials); kStatic shards index i to
  /// worker i % jobs (fully deterministic placement, useful when pinning
  /// threads). Results are identical either way — only wall clock differs.
  enum class Schedule : std::uint8_t { kDynamic, kStatic };
  Schedule schedule{Schedule::kDynamic};

  /// Total attempts per trial (first run + retries). A trial that throws on
  /// its last attempt is recorded as failed; earlier failures are retried
  /// with identical params/seed.
  int max_attempts{2};

  /// When true every trial gets an *enabled* private Registry and an armed
  /// private Tracer whose exports are captured into its TrialRecord (and a
  /// per-trial Sampler reachable via Trial::attach_sampler). When false the
  /// private instances are still installed — isolating the trial from any
  /// process-wide telemetry — but stay disabled: the zero-overhead path.
  bool capture_telemetry{false};
  std::size_t trace_capacity{1u << 16};
  double sample_period_s{1e-3};
};

struct TrialRecord;

/// Execution context handed to the trial function. Everything a trial may
/// observe or produce flows through here: its parameters, its derived seed,
/// ordered output (emit/record), and its private telemetry instances.
class Trial {
 public:
  std::size_t index() const { return index_; }
  const ParamPoint& params() const { return params_; }
  /// derive_seed(options.base_seed, index()) — see common/rng.hpp.
  std::uint64_t seed() const { return seed_; }
  /// 1-based attempt number (2 on the retry of a failed trial).
  int attempt() const { return attempt_; }

  /// Append a free-form output line; the aggregator replays lines of all
  /// trials in index order, reproducing the serial print order.
  void emit(std::string line);

  /// Record a named result value. Values appear in to_jsonl() under
  /// "results" and as CSV columns (column set = union over trials in index
  /// order, first-seen-first). Doubles use "%.10g" like telemetry exports.
  void record(const std::string& key, double value);
  void record(const std::string& key, std::int64_t value);
  void record(const std::string& key, const std::string& value);
  void record(const std::string& key, const char* value);
  void record_flag(const std::string& key, bool value);

  /// This trial's private telemetry (enabled/armed only when the sweep ran
  /// with capture_telemetry). The same instances are what
  /// telemetry::registry()/tracer() resolve to inside the trial.
  telemetry::Registry& registry() { return *registry_; }
  telemetry::Tracer& tracer() { return *tracer_; }

  /// Attach this trial's periodic sampler to a simulator (no-op unless
  /// capturing). Mirrors bench TelemetrySession::attach.
  template <class Sim>
  void attach_sampler(Sim& sim) {
    if (sampler_) sampler_->attach(sim);
  }

 private:
  friend struct TrialRunner;
  Trial(std::size_t index, ParamPoint params, std::uint64_t seed, int attempt,
        TrialRecord* record, telemetry::Registry* registry,
        telemetry::Tracer* tracer, telemetry::Sampler* sampler)
      : index_(index),
        params_(std::move(params)),
        seed_(seed),
        attempt_(attempt),
        record_(record),
        registry_(registry),
        tracer_(tracer),
        sampler_(sampler) {}

  std::size_t index_;
  ParamPoint params_;
  std::uint64_t seed_;
  int attempt_;
  TrialRecord* record_;
  telemetry::Registry* registry_;
  telemetry::Tracer* tracer_;
  telemetry::Sampler* sampler_;
};

/// Everything one trial produced. `wall_s` is informational only and never
/// serialized (see file header).
struct TrialRecord {
  struct Value {
    std::string key;
    std::string json;  // valid JSON token
    std::string csv;   // raw CSV cell
  };

  std::size_t index{0};
  /// Rendered parameters of this cell: "a=1 b=2.5", a JSON object, and one
  /// CSV cell per axis (axis order). Self-contained so records outlive the
  /// grid they were cut from.
  std::string params_str;
  std::string params_json;
  std::vector<std::string> param_cells;
  bool ok{false};
  int attempts{0};
  /// Terminal failure message (empty when ok). When a retry succeeded,
  /// `first_error` preserves what the failed attempt threw.
  std::string error;
  std::string first_error;
  double wall_s{0.0};

  std::vector<std::string> lines;
  std::vector<Value> values;

  /// Captured per-trial telemetry exports (capture_telemetry only).
  std::string metrics_jsonl;
  std::string trace_jsonl;
  std::string timeseries_csv;

  const Value* find(const std::string& key) const {
    for (const Value& v : values) {
      if (v.key == key) return &v;
    }
    return nullptr;
  }
  /// Convenience for benches reading back a recorded double; returns
  /// `fallback` when the key is absent.
  double f64(const std::string& key, double fallback = 0.0) const;
};

struct SweepResult {
  std::vector<TrialRecord> trials;  // dense, index == trial index
  std::vector<std::string> axis_names;
  unsigned jobs{1};
  double wall_s{0.0};               // informational, not serialized

  std::size_t failures() const {
    std::size_t n = 0;
    for (const TrialRecord& t : trials) n += t.ok ? 0 : 1;
    return n;
  }
  const TrialRecord& at(std::size_t index) const { return trials[index]; }

  /// One JSON object per trial, in index order:
  ///   {"trial":i,"params":{...},"ok":true,"attempts":1,"error":null,
  ///    "results":{...},"lines":[...]}
  std::string to_jsonl() const;

  /// Header "trial,<axis...>,ok,attempts,<result keys...>" then one row per
  /// trial in index order. Result columns are the union of recorded keys,
  /// first seen first (scanning trials in index order).
  std::string to_csv() const;

  /// Per-trial telemetry exports merged in index order; every line gains a
  /// leading "trial":i field (JSONL) or a "# trial i" section header (CSV).
  std::string merged_metrics_jsonl() const;
  std::string merged_trace_jsonl() const;
  std::string merged_timeseries_csv() const;
};

using TrialFn = std::function<void(Trial&)>;

/// Run every cell of `grid` through `fn` and aggregate. Blocking; spawns
/// options.jobs - 1 extra threads (the calling thread is worker 0).
SweepResult run_sweep(const ParamGrid& grid, const SweepOptions& options,
                      const TrialFn& fn);

}  // namespace sdr::sweep
