#include "sweep/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/logging.hpp"

namespace sdr::sweep {

// ---------------------------------------------------------------------------
// ParamValue / ParamPoint rendering
// ---------------------------------------------------------------------------

namespace {

std::string format_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// CSV cells are quoted only when they would break the row structure.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_string(const ParamValue& value) {
  struct Visitor {
    std::string operator()(std::int64_t v) const {
      return std::to_string(v);
    }
    std::string operator()(double v) const { return format_f64(v); }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
  };
  return std::visit(Visitor{}, value);
}

std::string to_json(const ParamValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return "\"" + json_escape(*s) + "\"";
  }
  return to_string(value);
}

std::string ParamPoint::to_string() const {
  std::string out;
  for (const auto& [key, val] : entries_) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += sweep::to_string(val);
  }
  return out;
}

std::string ParamPoint::to_json() const {
  std::string out = "{";
  for (const auto& [key, val] : entries_) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += json_escape(key);
    out += "\":";
    out += sweep::to_json(val);
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Trial output
// ---------------------------------------------------------------------------

void Trial::emit(std::string line) {
  record_->lines.push_back(std::move(line));
}

void Trial::record(const std::string& key, double value) {
  const std::string s = format_f64(value);
  record_->values.push_back({key, s, s});
}

void Trial::record(const std::string& key, std::int64_t value) {
  const std::string s = std::to_string(value);
  record_->values.push_back({key, s, s});
}

void Trial::record(const std::string& key, const std::string& value) {
  record_->values.push_back(
      {key, "\"" + json_escape(value) + "\"", csv_escape(value)});
}

void Trial::record(const std::string& key, const char* value) {
  record(key, std::string(value));
}

void Trial::record_flag(const std::string& key, bool value) {
  const std::string s = value ? "true" : "false";
  record_->values.push_back({key, s, s});
}

double TrialRecord::f64(const std::string& key, double fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  return std::strtod(v->csv.c_str(), nullptr);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Runs one trial (all attempts) into `out`. Lives in a struct so it can be
/// befriended by Trial without exposing engine internals in the header.
struct TrialRunner {
  static void run(const ParamGrid& grid, const SweepOptions& options,
                  const TrialFn& fn, std::size_t index, TrialRecord& out) {
    const int max_attempts = options.max_attempts < 1 ? 1
                                                      : options.max_attempts;
    std::string first_error;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      TrialRecord rec;
      rec.index = index;
      rec.attempts = attempt;
      rec.first_error = first_error;
      ParamPoint point = grid.point(index);
      rec.params_str = point.to_string();
      rec.params_json = point.to_json();
      rec.param_cells.reserve(point.size());
      for (std::size_t i = 0; i < point.size(); ++i) {
        rec.param_cells.push_back(csv_escape(to_string(point.at(i).second)));
      }

      // Private telemetry, installed thread-locally for the duration of the
      // trial body. Even with capture off the installation matters: it
      // guarantees nothing the trial does can reach a registry/tracer
      // shared with a concurrent trial.
      telemetry::Registry registry;
      telemetry::Tracer tracer;
      std::unique_ptr<telemetry::Sampler> sampler;
      if (options.capture_telemetry) {
        registry.enable();
        tracer.arm(options.trace_capacity);
        sampler = std::make_unique<telemetry::Sampler>(
            registry, options.sample_period_s);
      }

      const auto begin = std::chrono::steady_clock::now();
      {
        telemetry::ScopedTelemetry scoped(&registry, &tracer);
        Trial trial(index, std::move(point),
                    derive_seed(options.base_seed, index), attempt, &rec,
                    &registry, &tracer, sampler.get());
        try {
          fn(trial);
          rec.ok = true;
        } catch (const std::exception& e) {
          rec.error = e.what();
        } catch (...) {
          rec.error = "non-std::exception thrown";
        }
      }
      rec.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
      if (rec.ok && options.capture_telemetry) {
        rec.metrics_jsonl = registry.to_jsonl();
        rec.trace_jsonl = tracer.to_jsonl();
        rec.timeseries_csv = sampler->to_csv();
      }
      if (!rec.ok) {
        if (first_error.empty()) first_error = rec.error;
        SDR_WARN("sweep trial %zu attempt %d/%d failed: %s", index, attempt,
                 max_attempts, rec.error.c_str());
      }
      out = std::move(rec);
      if (out.ok) return;
    }
  }
};

SweepResult run_sweep(const ParamGrid& grid, const SweepOptions& options,
                      const TrialFn& fn) {
  SweepResult result;
  result.axis_names.reserve(grid.axes());
  for (std::size_t i = 0; i < grid.axes(); ++i) {
    result.axis_names.push_back(grid.axis_at(i).name);
  }
  const std::size_t n = grid.size();
  result.trials.resize(n);

  unsigned jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  if (n > 0 && jobs > n) jobs = static_cast<unsigned>(n);
  if (jobs == 0) jobs = 1;
  result.jobs = jobs;
  if (n == 0) return result;

  const auto begin = std::chrono::steady_clock::now();
  if (jobs == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      TrialRunner::run(grid, options, fn, i, result.trials[i]);
    }
  } else {
    // Workers write only result.trials[i] for the distinct indices they
    // claim; the vector is pre-sized, so no synchronization beyond the
    // claim cursor (dynamic) or the shard arithmetic (static) is needed.
    std::atomic<std::size_t> cursor{0};
    auto worker = [&](unsigned id) {
      if (options.schedule == SweepOptions::Schedule::kStatic) {
        for (std::size_t i = id; i < n; i += jobs) {
          TrialRunner::run(grid, options, fn, i, result.trials[i]);
        }
      } else {
        for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
             i < n;
             i = cursor.fetch_add(1, std::memory_order_relaxed)) {
          TrialRunner::run(grid, options, fn, i, result.trials[i]);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (unsigned id = 1; id < jobs; ++id) pool.emplace_back(worker, id);
    worker(0);  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
  SDR_INFO("sweep: %zu trials, %u job(s), %zu failure(s), %.3f s wall", n,
           jobs, result.failures(), result.wall_s);
  return result;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

std::string SweepResult::to_jsonl() const {
  std::string out;
  out.reserve(trials.size() * 128);
  for (const TrialRecord& t : trials) {
    out += "{\"trial\":";
    out += std::to_string(t.index);
    out += ",\"params\":";
    out += t.params_json.empty() ? "{}" : t.params_json;
    out += ",\"ok\":";
    out += t.ok ? "true" : "false";
    out += ",\"attempts\":";
    out += std::to_string(t.attempts);
    out += ",\"error\":";
    out += t.error.empty() ? "null" : "\"" + json_escape(t.error) + "\"";
    if (!t.first_error.empty()) {
      out += ",\"first_error\":\"" + json_escape(t.first_error) + "\"";
    }
    out += ",\"results\":{";
    for (std::size_t i = 0; i < t.values.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += json_escape(t.values[i].key);
      out += "\":";
      out += t.values[i].json;
    }
    out += "},\"lines\":[";
    for (std::size_t i = 0; i < t.lines.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += json_escape(t.lines[i]);
      out += '"';
    }
    out += "]}\n";
  }
  return out;
}

std::string SweepResult::to_csv() const {
  // Result columns: union of recorded keys, first seen first, scanning
  // trials in index order — deterministic because records are index-dense.
  std::vector<std::string> keys;
  for (const TrialRecord& t : trials) {
    for (const TrialRecord::Value& v : t.values) {
      bool seen = false;
      for (const std::string& k : keys) {
        if (k == v.key) {
          seen = true;
          break;
        }
      }
      if (!seen) keys.push_back(v.key);
    }
  }

  std::string out = "trial";
  for (const std::string& a : axis_names) {
    out += ',';
    out += csv_escape(a);
  }
  out += ",ok,attempts";
  for (const std::string& k : keys) {
    out += ',';
    out += csv_escape(k);
  }
  out += '\n';

  for (const TrialRecord& t : trials) {
    out += std::to_string(t.index);
    for (std::size_t i = 0; i < axis_names.size(); ++i) {
      out += ',';
      if (i < t.param_cells.size()) out += t.param_cells[i];
    }
    out += t.ok ? ",true," : ",false,";
    out += std::to_string(t.attempts);
    for (const std::string& k : keys) {
      out += ',';
      if (const TrialRecord::Value* v = t.find(k)) out += v->csv;
    }
    out += '\n';
  }
  return out;
}

namespace {

/// Inserts "trial":<i> as the first field of every JSON object line.
void append_labeled_jsonl(std::string& out, const std::string& body,
                          std::size_t trial) {
  const std::string label = "{\"trial\":" + std::to_string(trial) + ",";
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (eol > pos && body[pos] == '{') {
      out += label;
      out.append(body, pos + 1, eol - pos - 1);
      out += '\n';
    }
    pos = eol + 1;
  }
}

}  // namespace

std::string SweepResult::merged_metrics_jsonl() const {
  std::string out;
  for (const TrialRecord& t : trials) {
    append_labeled_jsonl(out, t.metrics_jsonl, t.index);
  }
  return out;
}

std::string SweepResult::merged_trace_jsonl() const {
  std::string out;
  for (const TrialRecord& t : trials) {
    append_labeled_jsonl(out, t.trace_jsonl, t.index);
  }
  return out;
}

std::string SweepResult::merged_timeseries_csv() const {
  std::string out;
  for (const TrialRecord& t : trials) {
    if (t.timeseries_csv.empty()) continue;
    out += "# trial ";
    out += std::to_string(t.index);
    out += " (";
    out += t.params_str;
    out += ")\n";
    out += t.timeseries_csv;
  }
  return out;
}

}  // namespace sdr::sweep
