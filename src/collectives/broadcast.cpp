#include "collectives/broadcast.hpp"

#include <algorithm>
#include <cstring>

#include "telemetry/telemetry.hpp"

namespace sdr::collectives {

namespace {

/// Parent of node i in the binomial tree rooted at 0: clear the highest
/// set bit. Children of i: i + 2^r for every 2^r > i (bounded by N).
std::size_t parent_of(std::size_t i) {
  std::size_t high = 1;
  while ((high << 1) <= i) high <<= 1;
  return i - high;
}

std::vector<std::size_t> children_of(std::size_t i, std::size_t n) {
  std::vector<std::size_t> kids;
  std::size_t step = 1;
  while (step <= i) step <<= 1;  // smallest power of two > i
  for (; i + step < n; step <<= 1) {
    kids.push_back(i + step);
  }
  return kids;
}

}  // namespace

BinomialBroadcast::BinomialBroadcast(sim::Simulator& simulator,
                                     BroadcastConfig config)
    : sim_(simulator), config_(config), fabric_(simulator) {
  const std::size_t n = config_.nodes;
  nics_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nics_.push_back(fabric_.add_nic());

  // Build links and reliable channels for exactly the tree edges.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = parent_of(i);
    verbs::Fabric::LinkOptions link = config_.link;
    link.config.seed = config_.seed + i * 7919;
    fabric_.connect(nics_[p], nics_[i], link);
    channels_.emplace(
        std::make_pair(p, i),
        std::make_unique<reliability::ReliableChannel>(
            sim_, *nics_[p], *nics_[i], config_.channel));
  }
}

BinomialBroadcast::~BinomialBroadcast() = default;

BroadcastResult BinomialBroadcast::run(
    std::vector<std::vector<std::uint8_t>>& buffers) {
  BroadcastResult result;
  const std::size_t n = config_.nodes;
  if (buffers.size() != n) {
    result.status = Status(StatusCode::kInvalidArgument,
                           "need one buffer per node");
    return result;
  }
  for (auto& buf : buffers) {
    if (buf.size() != config_.bytes) {
      result.status =
          Status(StatusCode::kInvalidArgument, "buffer size mismatch");
      return result;
    }
  }
  std::size_t rounds = 0;
  for (std::size_t v = 1; v < n; v <<= 1) ++rounds;
  result.rounds = rounds;

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("collectives.broadcast.runs").inc();
    reg.counter("collectives.broadcast.rounds").inc(rounds);
    reg.counter("collectives.broadcast.bytes").inc(config_.bytes * (n - 1));
  }

  buffers_ = &buffers;
  has_data_.assign(n, false);
  has_data_[0] = true;
  done_nodes_ = 1;  // the root

  double last_arrival_s = 0.0;
  // Every non-root posts its receive up front (CTS flows immediately; the
  // parent's send is queued by SDR until then anyway).
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = parent_of(i);
    reliability::ReliableChannel& ch = *channels_.at({p, i});
    const std::size_t node = i;
    const Status st = ch.recv(
        buffers[i].data(), config_.bytes,
        [this, node, &last_arrival_s](const Status& s) {
          if (!s.is_ok()) return;
          telemetry::ProfScope prof(telemetry::ProfCategory::kCollectives);
          has_data_[node] = true;
          ++done_nodes_;
          last_arrival_s = std::max(last_arrival_s, sim_.now().seconds());
          start_sends_from(node);  // eager: forward as soon as it lands
        });
    if (!st) {
      result.status = st;
      return result;
    }
  }
  start_sends_from(0);
  sim_.run();

  if (done_nodes_ != n) {
    result.status = Status(StatusCode::kAborted, "broadcast incomplete");
    return result;
  }
  result.completion_s = last_arrival_s;
  for (const auto& [edge, channel] : channels_) {
    result.total_retransmissions += channel->retransmissions();
  }
  result.status = Status::ok();
  return result;
}

void BinomialBroadcast::start_sends_from(std::size_t node) {
  for (const std::size_t child : children_of(node, config_.nodes)) {
    reliability::ReliableChannel& ch = *channels_.at({node, child});
    ch.send((*buffers_)[node].data(), config_.bytes, [](const Status&) {});
  }
}

}  // namespace sdr::collectives
