// Executable inter-datacenter ring Allreduce (paper §5.3) running on the
// full stack: N simulated datacenters (NICs) connected in a ring of lossy
// long-haul links, each hop served by a ReliableChannel (SR or EC over the
// SDR SDK). The algorithm is the standard 2(N-1)-step ring [Thakur & Gropp]:
// N-1 reduce-scatter steps followed by N-1 allgather steps over
// buffer_size/N segments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/nic.hpp"

namespace sdr::collectives {

struct RingConfig {
  std::size_t nodes{4};
  /// Floats per rank; must be divisible by nodes, and the per-segment byte
  /// count must satisfy the chosen scheme's granularity (k*chunk for EC).
  std::size_t elements{1 << 16};
  reliability::ReliableChannel::Options channel;
  sim::Channel::Config link;    // per-hop link parameters
  double p_drop_forward{1e-4};  // data-direction packet drop rate
  double p_drop_backward{0.0};  // control/ACK direction
  std::uint64_t seed{42};
};

struct RingResult {
  Status status;
  double completion_s{0.0};
  std::uint64_t total_retransmissions{0};
};

class RingAllreduce {
 public:
  explicit RingAllreduce(sim::Simulator& simulator, RingConfig config);
  ~RingAllreduce();
  RingAllreduce(const RingAllreduce&) = delete;
  RingAllreduce& operator=(const RingAllreduce&) = delete;

  /// In-place allreduce: buffers[i] is rank i's contribution on entry and
  /// the elementwise sum on completion. Drives the simulator internally
  /// (sim.run()) and returns the collective's completion time.
  RingResult run(std::vector<std::vector<float>>& buffers);

 private:
  struct Node;
  void start_step(std::size_t rank);
  void on_part_done(std::size_t rank, std::uint64_t step);
  std::size_t segment_of(std::size_t rank, std::uint64_t step, bool sending) const;

  sim::Simulator& sim_;
  RingConfig config_;
  std::vector<std::unique_ptr<verbs::Nic>> nics_;
  std::vector<std::unique_ptr<sim::DuplexLink>> links_;   // i -> i+1
  std::vector<std::unique_ptr<reliability::ReliableChannel>> channels_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t done_nodes_{0};
  std::vector<std::vector<float>>* buffers_{nullptr};
  telemetry::Counter parts_done_;
  telemetry::Scope tele_;  // last member: unbinds before members die
};

}  // namespace sdr::collectives
