#include "collectives/ring_allreduce.hpp"

#include <algorithm>
#include <cassert>

namespace sdr::collectives {

struct RingAllreduce::Node {
  std::size_t rank{0};
  std::uint64_t step{0};
  int pending{0};
  std::vector<float> scratch;
  bool finished{false};
  double finish_s{0.0};
};

RingAllreduce::RingAllreduce(sim::Simulator& simulator, RingConfig config)
    : sim_(simulator), config_(config) {
  const std::size_t n = config_.nodes;
  assert(n >= 2);

  nics_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nics_.push_back(
        std::make_unique<verbs::Nic>(sim_, static_cast<verbs::NicId>(i + 1)));
  }
  // Ring links: link i connects nic i -> nic (i+1) % n.
  links_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::Channel::Config link_cfg = config_.link;
    link_cfg.seed = config_.seed + i * 1000003ULL;
    auto link = std::make_unique<sim::DuplexLink>(
        sim_, link_cfg, std::make_unique<sim::IidDrop>(config_.p_drop_forward),
        std::make_unique<sim::IidDrop>(config_.p_drop_backward));
    verbs::Nic* src = nics_[i].get();
    verbs::Nic* dst = nics_[(i + 1) % n].get();
    link->forward().set_receiver(
        [dst](sim::Packet&& p) { dst->deliver(std::move(p)); });
    link->backward().set_receiver(
        [src](sim::Packet&& p) { src->deliver(std::move(p)); });
    src->add_route(dst->id(), &link->forward());
    dst->add_route(src->id(), &link->backward());
    links_.push_back(std::move(link));
  }
  channels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    channels_.push_back(std::make_unique<reliability::ReliableChannel>(
        sim_, *nics_[i], *nics_[(i + 1) % n], config_.channel));
  }

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    tele_ = telemetry::Scope(reg, reg.instance_name("collectives.ring"));
    parts_done_ = tele_.counter("parts_done");
    tele_.bind_gauge("done_nodes", [this] {
      return static_cast<double>(done_nodes_);
    });
  }
}

RingAllreduce::~RingAllreduce() = default;

std::size_t RingAllreduce::segment_of(std::size_t rank, std::uint64_t step,
                                      bool sending) const {
  const std::size_t n = config_.nodes;
  const auto r = static_cast<std::int64_t>(rank);
  const auto t = static_cast<std::int64_t>(step);
  const auto nn = static_cast<std::int64_t>(n);
  std::int64_t seg;
  if (step < n - 1) {
    // Reduce-scatter: send (rank - t), receive (rank - t - 1).
    seg = sending ? r - t : r - t - 1;
  } else {
    // Allgather: send (rank - t' + 1), receive (rank - t').
    const std::int64_t tp = t - (nn - 1);
    seg = sending ? r - tp + 1 : r - tp;
  }
  seg %= nn;
  if (seg < 0) seg += nn;
  return static_cast<std::size_t>(seg);
}

RingResult RingAllreduce::run(std::vector<std::vector<float>>& buffers) {
  RingResult result;
  const std::size_t n = config_.nodes;
  if (buffers.size() != n || config_.elements % n != 0) {
    result.status = Status(StatusCode::kInvalidArgument,
                           "buffers must match nodes; elements % nodes == 0");
    return result;
  }
  const std::size_t seg_floats = config_.elements / n;
  const std::size_t seg_bytes = seg_floats * sizeof(float);
  const bool is_ec =
      config_.channel.kind == reliability::ReliableChannel::Kind::kEcMds ||
      config_.channel.kind == reliability::ReliableChannel::Kind::kEcXor;
  if (is_ec) {
    const std::size_t granularity =
        config_.channel.ec.k * config_.channel.attr.chunk_size;
    if (seg_bytes % granularity != 0) {
      result.status =
          Status(StatusCode::kInvalidArgument,
                 "segment bytes must be a multiple of k*chunk for EC");
      return result;
    }
  }
  for (const auto& buf : buffers) {
    if (buf.size() != config_.elements) {
      result.status =
          Status(StatusCode::kInvalidArgument, "buffer size mismatch");
      return result;
    }
  }

  buffers_ = &buffers;
  done_nodes_ = 0;
  nodes_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->rank = i;
    node->scratch.resize(seg_floats);
    nodes_.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < n; ++i) start_step(i);
  sim_.run();

  if (done_nodes_ != n) {
    result.status =
        Status(StatusCode::kAborted, "collective did not complete");
    return result;
  }
  for (const auto& node : nodes_) {
    result.completion_s = std::max(result.completion_s, node->finish_s);
  }
  for (const auto& channel : channels_) {
    result.total_retransmissions += channel->retransmissions();
  }
  result.status = Status::ok();
  return result;
}

void RingAllreduce::start_step(std::size_t rank) {
  Node& node = *nodes_[rank];
  const std::size_t n = config_.nodes;
  if (node.step >= 2 * n - 2) {
    node.finished = true;
    node.finish_s = sim_.now().seconds();
    ++done_nodes_;
    return;
  }
  const std::size_t seg_floats = config_.elements / n;
  const std::size_t seg_bytes = seg_floats * sizeof(float);
  const std::uint64_t step = node.step;
  node.pending = 2;

  // Send this step's segment to the successor.
  const std::size_t send_seg = segment_of(rank, step, /*sending=*/true);
  const auto* send_ptr = reinterpret_cast<const std::uint8_t*>(
      (*buffers_)[rank].data() + send_seg * seg_floats);
  channels_[rank]->send(send_ptr, seg_bytes,
                        [this, rank, step](const Status& s) {
                          assert(s.is_ok());
                          (void)s;
                          on_part_done(rank, step);
                        });

  // Receive the predecessor's segment into scratch, then reduce/copy.
  const std::size_t recv_seg = segment_of(rank, step, /*sending=*/false);
  const std::size_t pred_channel = (rank + n - 1) % n;
  auto* recv_ptr = reinterpret_cast<std::uint8_t*>(nodes_[rank]->scratch.data());
  const bool reduce_phase = step < n - 1;
  channels_[pred_channel]->recv(
      recv_ptr, seg_bytes,
      [this, rank, step, recv_seg, seg_floats, reduce_phase](const Status& s) {
        assert(s.is_ok());
        (void)s;
        telemetry::ProfScope prof(telemetry::ProfCategory::kCollectives);
        Node& nd = *nodes_[rank];
        float* dst = (*buffers_)[rank].data() + recv_seg * seg_floats;
        if (reduce_phase) {
          for (std::size_t e = 0; e < seg_floats; ++e) dst[e] += nd.scratch[e];
        } else {
          std::copy(nd.scratch.begin(), nd.scratch.end(), dst);
        }
        on_part_done(rank, step);
      });
}

void RingAllreduce::on_part_done(std::size_t rank, std::uint64_t step) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kCollectives);
  Node& node = *nodes_[rank];
  if (node.step != step) return;  // stale callback (should not happen)
  parts_done_.inc();
  if (--node.pending == 0) {
    ++node.step;
    start_step(rank);
  }
}

}  // namespace sdr::collectives
