// Executable binomial-tree Broadcast across simulated datacenters.
//
// The paper's Appendix C argument — per-stage reliability costs accumulate
// through any stage-based collective schedule, "such as tree algorithms" —
// made executable: the root disseminates a buffer over a binomial tree in
// ceil(log2 N) rounds; in round r every node that already holds the data
// sends it to the peer `2^r` positions away. Each edge is a full
// ReliableChannel (SDR data path + control path) over its own lossy
// long-haul link.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "verbs/fabric.hpp"

namespace sdr::collectives {

struct BroadcastConfig {
  std::size_t nodes{4};
  std::size_t bytes{1 << 20};  // broadcast payload (k*chunk-aligned for EC)
  reliability::ReliableChannel::Options channel;
  verbs::Fabric::LinkOptions link;
  std::uint64_t seed{7};
};

struct BroadcastResult {
  Status status;
  double completion_s{0.0};
  std::uint64_t total_retransmissions{0};
  std::size_t rounds{0};
};

class BinomialBroadcast {
 public:
  BinomialBroadcast(sim::Simulator& simulator, BroadcastConfig config);
  ~BinomialBroadcast();
  BinomialBroadcast(const BinomialBroadcast&) = delete;
  BinomialBroadcast& operator=(const BinomialBroadcast&) = delete;

  /// buffers[0] (the root's) is the payload; on success every buffers[i]
  /// holds a byte-identical copy. Drives the simulator internally.
  BroadcastResult run(std::vector<std::vector<std::uint8_t>>& buffers);

 private:
  void start_sends_from(std::size_t node);

  sim::Simulator& sim_;
  BroadcastConfig config_;
  verbs::Fabric fabric_;
  std::vector<verbs::Nic*> nics_;
  // Channels keyed by (sender, receiver) — only tree edges are built.
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<reliability::ReliableChannel>> channels_;
  std::vector<bool> has_data_;
  std::size_t done_nodes_{0};
  std::vector<std::vector<std::uint8_t>>* buffers_{nullptr};
};

}  // namespace sdr::collectives
