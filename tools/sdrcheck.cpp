// sdrcheck — property-based conformance checker for the SDR stack.
//
// Modes:
//   sdrcheck --seeds=N [--base-seed=S] [--jobs=J]   batch fuzz run
//   sdrcheck --seed=S [--shrink-level=K]            replay one scenario
//            [--trace-perfetto=FILE]
//
// A batch run prints one line per failing seed plus the shrunk repro
// command; exit status is nonzero iff any oracle fired. A replay prints
// the scenario description, every arm's oracle verdicts, and (on failure)
// the tail of the packet-lifecycle trace. Failures additionally dump the
// per-connection flight-recorder rings (the last protocol state
// transitions of every arm) to sdrcheck_flight_<seed>.json and print the
// exact --trace-perfetto replay command that captures a causal span trace
// of the failing scenario.
//
// Determinism contract: seeds map to scenarios through common::Rng
// (xoshiro256**, golden-pinned), so `sdrcheck --seed=S --shrink-level=K`
// reproduces a CI failure bit-for-bit on any machine. See DESIGN.md
// §"Testing strategy".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/check.hpp"

namespace {

using sdr::check::BatchResult;
using sdr::check::CheckOptions;
using sdr::check::SeedReport;

struct CliArgs {
  bool batch{false};
  std::size_t seeds{0};
  std::uint64_t base_seed{0x5EED5EED5EED5EEDULL};
  bool single{false};
  std::uint64_t seed{0};
  int shrink_level{0};
  unsigned jobs{1};
  const char* failing_seed_file{nullptr};
  const char* trace_perfetto{nullptr};
};

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --seeds=N [--base-seed=S] [--jobs=J] "
               "[--failing-seed-file=PATH]\n"
               "       %s --seed=S [--shrink-level=K] "
               "[--trace-perfetto=FILE]\n",
               argv0, argv0);
  return 2;
}

bool parse_args(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::uint64_t v = 0;
    if (std::strncmp(a, "--seeds=", 8) == 0 && parse_u64(a + 8, &v)) {
      args->batch = true;
      args->seeds = static_cast<std::size_t>(v);
    } else if (std::strncmp(a, "--base-seed=", 12) == 0 &&
               parse_u64(a + 12, &v)) {
      args->base_seed = v;
    } else if (std::strncmp(a, "--seed=", 7) == 0 && parse_u64(a + 7, &v)) {
      args->single = true;
      args->seed = v;
    } else if (std::strncmp(a, "--shrink-level=", 15) == 0 &&
               parse_u64(a + 15, &v)) {
      args->shrink_level = static_cast<int>(v);
    } else if (std::strncmp(a, "--jobs=", 7) == 0 && parse_u64(a + 7, &v)) {
      args->jobs = static_cast<unsigned>(v);
    } else if (std::strncmp(a, "--failing-seed-file=", 20) == 0) {
      args->failing_seed_file = a + 20;
    } else if (std::strncmp(a, "--trace-perfetto=", 17) == 0) {
      args->trace_perfetto = a + 17;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return false;
    }
  }
  return args->batch != args->single;  // exactly one mode
}

void print_report(const SeedReport& report) {
  std::printf("seed=%llu shrink-level=%d\n",
              static_cast<unsigned long long>(report.seed),
              report.shrink_level);
  std::printf("scenario: %s\n", report.scenario.describe().c_str());
  for (const auto& arm : report.arms) {
    std::printf("  arm %-8s %s (%llu retransmissions)\n", arm.name.c_str(),
                arm.ok() ? "OK" : "FAIL",
                static_cast<unsigned long long>(arm.retransmissions));
  }
  if (!report.ok()) {
    std::printf("oracle failures:\n%s", report.failure_text().c_str());
    const std::string& timeline = report.timeline();
    if (!timeline.empty()) {
      std::printf("trace tail of first failing arm:\n%s", timeline.c_str());
    }
  }
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

/// Failure postmortem: dump the flight-recorder rings next to the repro
/// line and print the span-trace replay command.
void print_postmortem(const SeedReport& report) {
  const std::string flight = report.flight_json();
  if (!flight.empty()) {
    const std::string path =
        "sdrcheck_flight_" + std::to_string(report.seed) + ".json";
    if (write_text_file(path, flight)) {
      std::printf("  flight recorder: %s\n", path.c_str());
    }
  }
  std::string replay =
      sdr::check::repro_command(report.seed, report.shrink_level);
  replay += " --trace-perfetto=sdrcheck_trace_" +
            std::to_string(report.seed) + ".json";
  std::printf("  span trace: `%s`\n", replay.c_str());
}

int run_single(const CliArgs& args) {
  CheckOptions opts;
  opts.capture_spans = args.trace_perfetto != nullptr;
  const SeedReport report =
      sdr::check::check_seed(args.seed, opts, args.shrink_level);
  print_report(report);
  if (args.trace_perfetto != nullptr) {
    const std::string chrome = report.chrome_json();
    if (!chrome.empty() && write_text_file(args.trace_perfetto, chrome)) {
      std::printf("wrote span trace to %s\n", args.trace_perfetto);
    }
  }
  if (report.ok()) {
    std::printf("PASS: all oracles hold\n");
    return 0;
  }
  std::printf("FAIL: repro with `%s`\n",
              sdr::check::repro_command(report.seed, report.shrink_level)
                  .c_str());
  print_postmortem(report);
  return 1;
}

int run_batch(const CliArgs& args) {
  const CheckOptions opts;
  const BatchResult batch =
      sdr::check::check_seeds(args.base_seed, args.seeds, opts, args.jobs);
  std::printf("checked %zu seeds (base-seed=%llu, jobs=%u): %zu failing\n",
              batch.total, static_cast<unsigned long long>(batch.base_seed),
              args.jobs, batch.failing_seeds.size());
  for (const auto& shrunk : batch.shrunk) {
    std::printf("FAIL seed=%llu shrunk-to-level=%d: %s\n",
                static_cast<unsigned long long>(shrunk.minimal.seed),
                shrunk.level, shrunk.minimal.scenario.describe().c_str());
    std::printf("%s", shrunk.minimal.failure_text().c_str());
    std::printf("  repro: %s\n", shrunk.repro.c_str());
    print_postmortem(shrunk.minimal);
  }
  if (args.failing_seed_file != nullptr && !batch.ok()) {
    if (std::FILE* f = std::fopen(args.failing_seed_file, "w")) {
      for (const auto& shrunk : batch.shrunk) {
        std::fprintf(f, "%s\n", shrunk.repro.c_str());
      }
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.failing_seed_file);
    }
  }
  return batch.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, &args)) return usage(argv[0]);
  return args.batch ? run_batch(args) : run_single(args);
}
