// sdr_cpuinfo: print the host's SIMD feature probe and which GF(256)
// kernel tier the erasure-code dispatcher selects. CI uses this to decide
// which SDR_EC_ISA matrix entries are runnable on the current runner
// (exit status 0 with `--require=ISA` when supported, 2 when not), so
// unsupported tiers are skipped loudly instead of silently passing.
#include <cstdio>
#include <cstring>

#include "common/cpu.hpp"
#include "ec/gf256_kernels.hpp"

int main(int argc, char** argv) {
  using namespace sdr;
  const char* require = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--require=", 10) == 0) {
      require = argv[i] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--require=scalar|ssse3|avx2|gfni]\n", argv[0]);
      return 1;
    }
  }

  std::printf("features: %s\n", common::cpu_feature_summary().c_str());
  std::printf("dispatched: %s\n", ec::isa_name(ec::gf_kernels().isa));
  std::printf("tiers:");
  for (ec::GfIsa isa : {ec::GfIsa::kScalar, ec::GfIsa::kSsse3,
                        ec::GfIsa::kAvx2, ec::GfIsa::kGfni}) {
    const bool compiled = ec::gf_kernels_for(isa) != nullptr;
    const bool usable = compiled && ec::isa_supported(isa);
    std::printf(" %s=%s", ec::isa_name(isa),
                usable ? "ok" : (compiled ? "no-cpu" : "no-build"));
  }
  std::printf("\n");

  if (require != nullptr) {
    for (ec::GfIsa isa : {ec::GfIsa::kScalar, ec::GfIsa::kSsse3,
                          ec::GfIsa::kAvx2, ec::GfIsa::kGfni}) {
      if (std::strcmp(require, ec::isa_name(isa)) != 0) continue;
      const bool usable =
          ec::gf_kernels_for(isa) != nullptr && ec::isa_supported(isa);
      return usable ? 0 : 2;
    }
    std::fprintf(stderr, "unknown ISA: %s\n", require);
    return 1;
  }
  return 0;
}
