#!/usr/bin/env python3
"""Validate a --trace-perfetto export against the Chrome trace-event schema.

Stdlib-only (CI runners have no jsonschema package): the schema below is
expressed as a small validator covering the subset of the trace-event
format the span recorder emits — complete ("X") duration events, instants
("i"), flow arrows ("s"/"f"), and metadata ("M") rows. Exits nonzero with
a path-anchored message on the first violation.

Usage: validate_perfetto.py trace.json
"""
import json
import sys

# Required keys per phase, beyond the common ones.
COMMON = {"name": str, "ph": str, "pid": int, "tid": int}
PER_PHASE = {
    "X": {"ts": (int, float), "dur": (int, float)},
    "i": {"ts": (int, float)},
    "s": {"ts": (int, float), "id": (int, str)},
    "f": {"ts": (int, float), "id": (int, str)},
    "M": {"args": dict},
}


def fail(msg):
    print(f"validate_perfetto: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        fail(f"{where}: not an object")
    for key, typ in COMMON.items():
        if key not in ev:
            fail(f"{where}: missing '{key}': {ev}")
        if not isinstance(ev[key], typ):
            fail(f"{where}.{key}: expected {typ.__name__}: {ev}")
    ph = ev["ph"]
    if ph not in PER_PHASE:
        fail(f"{where}.ph: unknown phase {ph!r}")
    for key, typ in PER_PHASE[ph].items():
        if key not in ev:
            fail(f"{where} (ph={ph}): missing '{key}': {ev}")
        if not isinstance(ev[key], typ):
            fail(f"{where}.{key} (ph={ph}): wrong type: {ev}")
    if ph == "X" and ev["dur"] < 0:
        fail(f"{where}: negative duration: {ev}")
    if ph in ("X", "i") and ev["ts"] < 0:
        fail(f"{where}: negative timestamp: {ev}")
    if ph == "M":
        if ev["name"] not in ("process_name", "thread_name"):
            fail(f"{where}: unexpected metadata row {ev['name']!r}")
        if not isinstance(ev["args"].get("name"), str):
            fail(f"{where}: metadata args.name missing: {ev}")


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_perfetto.py trace.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"displayTimeUnit invalid: {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not a list")

    phases = {}
    for i, ev in enumerate(events):
        check_event(i, ev)
        phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1

    if phases.get("X", 0) == 0:
        fail("no duration spans — the recorder captured nothing")
    if phases.get("M", 0) == 0:
        fail("no metadata rows — tracks are unnamed")
    # Flow arrows come in start/finish pairs sharing an id.
    if phases.get("s", 0) != phases.get("f", 0):
        fail(f"unpaired flow arrows: {phases.get('s', 0)} starts, "
             f"{phases.get('f', 0)} finishes")
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    if starts != finishes:
        fail("flow start/finish id sets differ")

    print(f"validate_perfetto: OK: {len(events)} events "
          f"({phases.get('X', 0)} spans, {phases.get('i', 0)} instants, "
          f"{phases.get('s', 0)} flow links, {phases.get('M', 0)} metadata)")


if __name__ == "__main__":
    main()
