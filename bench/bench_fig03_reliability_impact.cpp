// Figure 3: impact of reliability scheme on message completion time at
// 400 Gbit/s. Three panels, slowdown = E[T] / T_ideal:
//   (a) message size sweep at 3750 km (25 ms RTT), Pdrop = 1e-5
//   (b) distance sweep for an 8 GiB message, Pdrop = 1e-5
//   (c) drop-rate sweep for a 128 MiB message at 3750 km
// The models operate at packet (4 KiB MTU) chunk granularity, matching the
// paper's transport-level analysis.
#include <vector>

#include "bench_util.hpp"
#include "model/protocols.hpp"

using namespace sdr;  // NOLINT

namespace {

model::LinkParams link_at(double km, double p_drop) {
  model::LinkParams link;
  link.bandwidth_bps = 400 * Gbps;
  link.rtt_s = rtt_s(km);
  link.p_drop = p_drop;
  link.chunk_bytes = 4096;
  return link;
}

void panel(const char* title, TextTable& table) {
  std::printf("\n--- %s ---\n", title);
  table.print();
}

std::vector<std::string> row_for(const std::string& label,
                                 const model::LinkParams& link,
                                 std::uint64_t chunks) {
  const double ideal = model::ideal_completion_s(link, chunks);
  auto cell = [&](model::Scheme s) {
    return bench::speedup_cell(
        model::expected_completion_s(s, link, chunks) / ideal);
  };
  return {label, cell(model::Scheme::kSrRto), cell(model::Scheme::kSrNack),
          cell(model::Scheme::kEcMds), format_seconds(ideal)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 3",
                       "reliability impact on message time at 400 Gbit/s "
                       "(slowdown vs lossless ideal)");

  // (a) message size sweep, 25 ms RTT, p = 1e-5.
  {
    TextTable t({"message", "SR RTO", "SR NACK", "EC MDS(32,8)", "ideal"});
    for (std::uint64_t mib = 1; mib <= 64 * 1024; mib *= 4) {
      const std::uint64_t bytes = mib * MiB;
      const model::LinkParams link = link_at(3750.0, 1e-5);
      t.add_row(row_for(format_bytes(bytes), link, bytes / link.chunk_bytes));
    }
    panel("(a) 3750 km = 25 ms RTT, Pdrop = 1e-5 — size sweep", t);
    std::printf("shape: SR peaks near M ~ 1/Pdrop (~400 MiB) and recovers "
                "for >= 32 GiB messages; EC stays near-ideal, paying only "
                "parity bandwidth.\n");
  }

  // (b) distance sweep, 8 GiB message, p = 1e-5.
  {
    TextTable t({"distance", "SR RTO", "SR NACK", "EC MDS(32,8)", "ideal"});
    for (const double km : {10.0, 100.0, 500.0, 1000.0, 2000.0, 3750.0,
                            7500.0, 15000.0}) {
      const model::LinkParams link = link_at(km, 1e-5);
      const std::uint64_t chunks = (8ull << 30) / link.chunk_bytes;
      char label[32];
      std::snprintf(label, sizeof(label), "%5.0f km", km);
      t.add_row(row_for(label, link, chunks));
    }
    panel("(b) 8 GiB message, Pdrop = 1e-5 — distance sweep", t);
    std::printf("shape: as distance grows the 8 GiB message flips from "
                "injection-dominated (SR wins) to RTT-dominated (EC wins).\n");
  }

  // (c) drop-rate sweep, 128 MiB at 3750 km.
  {
    TextTable t({"Pdrop", "SR RTO", "SR NACK", "EC MDS(32,8)", "ideal"});
    for (double p = 1e-8; p <= 0.11; p *= 10.0) {
      const model::LinkParams link = link_at(3750.0, p);
      const std::uint64_t chunks = (128ull << 20) / link.chunk_bytes;
      t.add_row(row_for(TextTable::sci(p, 0), link, chunks));
    }
    panel("(c) 128 MiB message, 3750 km — drop-rate sweep", t);
    std::printf("shape: SR slowdown grows from ~3x to ~10x above 1e-4 "
                "(multiple retransmission rounds); EC holds until its code "
                "tolerance, then falls back.\n");
  }
  return 0;
}
