// Figure 9: Erasure Coding improvement (speedup of mean completion time)
// over Selective Repeat at 400 Gbit/s and 25 ms RTT, as a message-size x
// drop-rate grid. Red regions of the paper (speedup > 1) must appear for
// 128 KiB - 1 GiB messages within the 1e-6..1e-2 drop range; SR must win
// (speedup < 1) for multi-GiB messages at low drop rates.
//
// The grid runs on the sweep engine: `--jobs=N` fans the cells out over N
// workers with bit-identical output (this bench is the canonical
// serial-vs-parallel regression check — see EXPERIMENTS.md).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/protocols.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Figure 9",
                       "EC(32,8) speedup over SR RTO at 400 Gbit/s, 25 ms "
                       "RTT (mean completion, packet-granularity chunks)");

  const std::vector<double> drops = {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                     1e-1};
  std::vector<std::int64_t> sizes;
  for (std::uint64_t bytes = 64 * KiB; bytes <= 64ull * GiB; bytes *= 4) {
    sizes.push_back(static_cast<std::int64_t>(bytes));
  }

  // Last axis (p_drop) varies fastest: trial order == the old nested loops.
  sweep::ParamGrid grid;
  grid.axis_i64("bytes", sizes).axis_f64("p_drop", drops);

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xF16009), [](sweep::Trial& trial) {
        model::LinkParams link;
        link.bandwidth_bps = 400 * Gbps;
        link.rtt_s = 0.025;
        link.chunk_bytes = 4096;
        link.p_drop = trial.params().f64("p_drop");
        const auto bytes =
            static_cast<std::uint64_t>(trial.params().i64("bytes"));
        const std::uint64_t chunks = bytes / link.chunk_bytes;
        const double sr = model::expected_completion_s(model::Scheme::kSrRto,
                                                       link, chunks);
        const double ec = model::expected_completion_s(model::Scheme::kEcMds,
                                                       link, chunks);
        trial.record("sr_s", sr);
        trial.record("ec_s", ec);
        trial.record("speedup", sr / ec);
      });
  sweep_cli.finish(result);

  std::vector<std::string> headers = {"message \\ Pdrop"};
  for (double p : drops) headers.push_back(TextTable::sci(p, 0));
  TextTable table(headers);

  bool red_region_seen = false;   // EC > 1.2x somewhere in the paper's range
  bool sr_wins_large_low = false; // EC < 1x for huge messages at low drop

  std::size_t trial_index = 0;
  for (const std::int64_t size : sizes) {
    const auto bytes = static_cast<std::uint64_t>(size);
    std::vector<std::string> row = {format_bytes(bytes)};
    for (double p : drops) {
      const double speedup = result.at(trial_index++).f64("speedup");
      row.push_back(bench::speedup_cell(speedup));
      if (speedup > 1.2 && bytes >= 128 * KiB && bytes <= GiB && p >= 1e-6 &&
          p <= 1e-2) {
        red_region_seen = true;
      }
      if (speedup < 1.0 && bytes >= 8ull * GiB && p <= 1e-6) {
        sr_wins_large_low = true;
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nshape checks: EC red region (128 KiB-1 GiB, 1e-6..1e-2): "
              "%s; SR wins for >=8 GiB at <=1e-6: %s\n",
              red_region_seen ? "reproduced" : "MISSING",
              sr_wins_large_low ? "reproduced" : "MISSING");
  return (red_region_seen && sr_wins_large_low && result.failures() == 0)
             ? 0
             : 1;
}
