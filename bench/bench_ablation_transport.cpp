// Ablation: UC zero-copy backend vs UD staging backend (paper §2.3).
//
// The paper chooses UC because "UD ... comes at the cost of intermediate
// packet staging in the host CPU or NIC memory on the receive side", while
// UC delivers payloads straight into the user buffer through the root
// indirect memory key. This ablation quantifies the trade:
//   * MEASURED: the per-packet staging copy cost on this host, converted
//     into the CPU bandwidth the UD backend burns at 400 Gbit/s line rate;
//   * SIMULATED: functional equivalence of the two backends under loss
//     (same bitmap semantics, same completion behaviour).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

double measure_staging_ns_per_packet(std::size_t mtu) {
  // The UD receive backend's extra work vs UC: one memcpy from a staging
  // buffer (recently written by the NIC -> likely cache-resident) into the
  // user buffer.
  std::vector<std::uint8_t> staging(mtu, 0x5A);
  std::vector<std::uint8_t> user(64 * MiB);
  const std::size_t slots = user.size() / mtu;
  const std::size_t reps = 1 << 16;
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i) {
    std::memcpy(user.data() + (i % slots) * mtu, staging.data(), mtu);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - begin).count() /
         static_cast<double>(reps);
}

struct SimOutcome {
  std::size_t chunks_received{0};
  std::size_t chunks_total{0};
  std::uint64_t staged_packets{0};
  bool data_ok{false};
};

SimOutcome run_backend(core::Transport transport, double p_drop) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 100.0;
  cfg.seed = 1234;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, p_drop, 0.0);
  core::Context ctx_a(*nics.a, core::DevAttr{});
  core::Context ctx_b(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = 8 * MiB;
  attr.transport = transport;
  core::Qp* tx = ctx_a.create_qp(attr);
  core::Qp* rx = ctx_b.create_qp(attr);
  tx->connect(rx->info());
  rx->connect(tx->info());

  const std::size_t len = 8 * MiB;
  std::vector<std::uint8_t> src(len), dst(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  core::RecvHandle* rh = nullptr;
  rx->recv_post(dst.data(), len, mr, &rh);
  core::SendHandle* sh = nullptr;
  tx->send_post(src.data(), len, 0, false, &sh);
  sim.run();

  const AtomicBitmap* bitmap = nullptr;
  rx->recv_bitmap_get(rh, &bitmap);
  SimOutcome out;
  out.chunks_total = rh->chunk_count();
  out.chunks_received = bitmap->popcount();
  out.staged_packets = rx->stats().staged_packets;
  out.data_ok = true;
  for (std::size_t c = 0; c < out.chunks_total; ++c) {
    if (bitmap->test(c) &&
        std::memcmp(dst.data() + c * attr.chunk_size,
                    src.data() + c * attr.chunk_size, attr.chunk_size) != 0) {
      out.data_ok = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: UC zero-copy vs UD staging backend (§2.3)",
                       "measured staging cost + functional comparison");

  const double ns_per_pkt = measure_staging_ns_per_packet(4096);
  const double copy_gbps = 4096.0 * 8.0 / ns_per_pkt;  // Gbit/s per core
  {
    TextTable t({"backend", "per-packet host work", "CPU copy bandwidth",
                 "cores to stage 400 Gbit/s"});
    t.add_row({"UC (zero-copy)", "none (NIC DMA places payload)", "-", "0"});
    char work[48];
    std::snprintf(work, sizeof(work), "%.0f ns memcpy (4 KiB)", ns_per_pkt);
    t.add_row({"UD (staging)", work,
               TextTable::num(copy_gbps, 3) + " Gbit/s",
               TextTable::num(std::ceil(400.0 / copy_gbps), 2)});
    t.print();
    std::printf("\nzero-copy is the reason the SDR backend rides on UC: at "
                "400 Gbit/s the UD backend would burn ~%.1f cores on "
                "copies alone (plus memory bandwidth twice).\n\n",
                400.0 / copy_gbps);
  }

  {
    TextTable t({"backend", "drop rate", "chunks complete", "staged packets",
                 "complete chunks intact"});
    for (const double p : {0.0, 0.05}) {
      for (const core::Transport transport :
           {core::Transport::kUc, core::Transport::kUd}) {
        const SimOutcome o = run_backend(transport, p);
        t.add_row({transport == core::Transport::kUc ? "UC" : "UD",
                   TextTable::num(p, 2),
                   std::to_string(o.chunks_received) + "/" +
                       std::to_string(o.chunks_total),
                   std::to_string(o.staged_packets),
                   o.data_ok ? "yes" : "NO"});
      }
    }
    t.print();
    std::printf("\nboth backends expose identical partial-completion bitmap "
                "semantics; they differ only in the staging copies the UD "
                "path performs.\n");
  }
  return 0;
}
