// Ablation: emergent congestion loss vs i.i.d. random loss.
//
// Fig 2 attributes inter-DC drops to ISP switch-buffer congestion. Here the
// loss is EMERGENT rather than sampled: bursty cross traffic shares the
// foreground channel, a bounded egress buffer tail-drops on overflow, and
// the reliability protocols must cope with drops that are bursty, load-
// correlated and size-dependent. The same average loss is then replayed as
// i.i.d. for comparison. The paper's FTO slack term (beta*RTT, "alpha
// reflects switch buffering along the path") exists precisely for the
// queueing delay this setup creates, so the bench also reports EC with a
// too-small beta.
//
// The calibration probe runs serially (everything depends on its measured
// loss); the 3 schemes x 2 loss-process grid then runs on the sweep engine
// (`--jobs=N`) with bit-identical output at any job count.
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/cross_traffic.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct RunStats {
  double completion_s{0.0};
  double measured_loss{0.0};
  std::uint64_t retransmissions{0};
  bool ok{false};
};

// `trial` is null for the serial calibration probe (live-session telemetry)
// and non-null inside sweep cells (per-trial private telemetry).
RunStats run(reliability::ReliableChannel::Kind kind, bool congested,
             double iid_equivalent_loss, double ec_beta,
             sweep::Trial* trial = nullptr) {
  sim::Simulator sim;
  if (trial != nullptr) {
    trial->attach_sampler(sim);
  } else {
    bench::TelemetrySession::attach(sim);
  }
  // Two-stage forward path: the sender NIC's serializer paces the
  // foreground to line rate (unbounded queue, negligible distance), then a
  // SWITCH egress with a bounded buffer carries it across the long haul.
  // Cross traffic joins at the switch — congestion loss only happens when
  // foreground and background genuinely collide there.
  sim::Channel::Config nic_cfg;
  nic_cfg.bandwidth_bps = 100 * Gbps;
  nic_cfg.distance_km = 0.01;
  nic_cfg.seed = 96;
  sim::Channel::Config sw_cfg;
  sw_cfg.bandwidth_bps = 100 * Gbps;
  sw_cfg.distance_km = 500.0;
  sw_cfg.seed = 97;
  if (congested) sw_cfg.queue_capacity_bytes = 2 * 1024 * 1024;

  auto nic_a = std::make_unique<verbs::Nic>(sim, 1);
  auto nic_b = std::make_unique<verbs::Nic>(sim, 2);
  auto switch_fwd = std::make_unique<sim::Channel>(
      sim, sw_cfg,
      std::make_unique<sim::IidDrop>(congested ? 0.0 : iid_equivalent_loss));
  auto nic_tx = std::make_unique<sim::Channel>(
      sim, nic_cfg, std::make_unique<sim::IidDrop>(0.0));
  auto backward = std::make_unique<sim::Channel>(
      sim, sw_cfg, std::make_unique<sim::IidDrop>(0.0));
  nic_tx->set_receiver([sw = switch_fwd.get()](sim::Packet&& p) {
    sw->send(std::move(p));
  });
  switch_fwd->set_receiver(
      [nic = nic_b.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  backward->set_receiver(
      [nic = nic_a.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  nic_a->add_route(2, nic_tx.get());
  nic_b->add_route(1, backward.get());

  sim::CrossTraffic::Params bg_params;
  bg_params.burst_load = 0.6;
  bg_params.packet_bytes = 4096;  // MTU-sized: drops shared with foreground
  bg_params.mean_burst_s = 1e-3;
  bg_params.mean_idle_s = 1e-3;
  sim::CrossTraffic background(sim, *switch_fwd, bg_params);
  if (congested) background.start(SimTime::from_seconds(5.0));

  reliability::ReliableChannel::Options options;
  options.kind = kind;
  options.profile.bandwidth_bps = sw_cfg.bandwidth_bps;
  options.profile.rtt_s = rtt_s(sw_cfg.distance_km);
  options.profile.p_drop_packet = iid_equivalent_loss;
  options.profile.mtu = 4096;
  options.profile.chunk_bytes = 4096;
  options.attr.mtu = 4096;
  options.attr.chunk_size = 4096;
  options.attr.max_msg_size = 8 * MiB;
  options.attr.max_inflight = 256;
  options.ec.k = 32;
  options.ec.m = 8;
  options.derive_timeouts();
  options.ec.beta = ec_beta;
  reliability::ReliableChannel channel(sim, *nic_a, *nic_b, options);

  const std::size_t bytes = 8 * MiB;
  std::vector<std::uint8_t> src(bytes), dst(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  RunStats stats;
  int completed = 0;
  const int messages = 6;
  double total_s = 0.0;
  for (int m = 0; m < messages; ++m) {
    const double start = sim.now().seconds();
    bool done = false;
    channel.recv(dst.data(), bytes, [&](const Status& s) {
      if (s.is_ok()) ++completed;
      done = true;
    });
    channel.send(src.data(), bytes, [](const Status&) {});
    // Early-exit polling: stop simulating as soon as the message lands
    // (the cross traffic would otherwise keep the event queue busy).
    const SimTime deadline = sim.now() + SimTime::from_seconds(1.0);
    while (!done && sim.now() < deadline) {
      sim.run_until(sim.now() + SimTime::from_millis(5.0));
    }
    total_s += sim.now().seconds() - start;
  }
  background.stop();
  sim.run_until(sim.now() + SimTime::from_millis(1.0));
  stats.ok = completed == messages &&
             std::memcmp(dst.data(), src.data(), bytes) == 0;
  stats.completion_s = total_s / messages;
  stats.retransmissions = channel.retransmissions();
  const auto& fwd = switch_fwd->stats();
  stats.measured_loss =
      fwd.sent_packets
          ? static_cast<double>(fwd.queue_drops + fwd.dropped_packets) /
                static_cast<double>(fwd.sent_packets)
          : 0.0;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Ablation: emergent congestion vs i.i.d. loss",
                       "8 MiB reliable Writes sharing a 100G link with "
                       "bursty cross traffic and a 2 MiB switch buffer");

  // First, measure the congestion-induced FOREGROUND loss with SR to
  // calibrate the i.i.d. comparison runs: every retransmission corresponds
  // to one (believed-)lost foreground chunk.
  const RunStats probe = run(reliability::ReliableChannel::Kind::kSrRto,
                             /*congested=*/true, 1e-3, 0.5);
  const double fg_total =
      static_cast<double>(probe.retransmissions) + 6.0 * 2048.0;
  const double loss = std::clamp(
      static_cast<double>(probe.retransmissions) / fg_total, 1e-5, 0.5);
  std::printf("measured loss — foreground flows: %.2e (from %llu "
              "retransmissions); all flows incl. background bursts: %.2e\n\n",
              loss, static_cast<unsigned long long>(probe.retransmissions),
              probe.measured_loss);

  struct Case {
    const char* name;
    reliability::ReliableChannel::Kind kind;
    double beta;
  };
  const Case cases[] = {
      {"SR RTO", reliability::ReliableChannel::Kind::kSrRto, 0.5},
      {"EC MDS(32,8) beta=0.5", reliability::ReliableChannel::Kind::kEcMds,
       0.5},
      {"EC MDS(32,8) beta=2.0", reliability::ReliableChannel::Kind::kEcMds,
       2.0},
  };

  // Last axis (congested) varies fastest: cell order == the old loops.
  sweep::ParamGrid grid;
  grid.axis_i64("case", {0, 1, 2}).axis_flag("congested", {true, false});
  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xAB1AC049), [&](sweep::Trial& trial) {
        const Case& c =
            cases[static_cast<std::size_t>(trial.params().i64("case"))];
        const RunStats s = run(c.kind, trial.params().flag("congested"), loss,
                               c.beta, &trial);
        trial.record("completion_s", s.completion_s);
        trial.record("retransmissions",
                     static_cast<std::int64_t>(s.retransmissions));
        trial.record_flag("delivered", s.ok);
      });
  sweep_cli.finish(result);

  TextTable t({"scheme", "loss process", "mean completion",
               "retransmissions", "delivered"});
  std::size_t trial_index = 0;
  for (const Case& c : cases) {
    for (const bool congested : {true, false}) {
      const sweep::TrialRecord& rec = result.at(trial_index++);
      const sweep::TrialRecord::Value* retrans = rec.find("retransmissions");
      const sweep::TrialRecord::Value* delivered = rec.find("delivered");
      t.add_row({c.name, congested ? "emergent congestion" : "i.i.d.",
                 format_seconds(rec.f64("completion_s")),
                 retrans != nullptr ? retrans->csv : "0",
                 delivered != nullptr && delivered->csv == "true" ? "yes"
                                                                  : "NO"});
    }
  }
  t.print();
  std::printf("\nobservations:\n"
              " * the paper's model assumes i.i.d. chunk drops (4.2.1); "
              "emergent congestion clusters losses instead. At equal "
              "average loss EC(32,8) decodes the i.i.d. pattern entirely "
              "in place (0 retransmissions) but bursts overwhelm single "
              "submessages and force SR fallbacks;\n"
              " * SR is the mirror image: clustered drops mean fewer "
              "affected RTO rounds, so it recovers the bursty pattern "
              "faster than the spread-out i.i.d. one;\n"
              " * this is exactly why the tuner's inputs (and the FTO's "
              "beta buffering slack) must reflect the deployment's loss "
              "PROCESS, not just its rate — the paper's 2.1 argument.\n");
  return 0;
}
