// Figure 13: 99.9th-percentile completion-time speedup of inter-datacenter
// ring Allreduce with MDS EC over SR RTO reliability.
//   Left panel:  128 MiB buffer, datacenter count sweep x drop rates.
//   Right panel: 4 datacenters, buffer size sweep x drop rates.
// Paper shape: EC's tail speedup grows with drop rate from ~3x to >6x; the
// multi-stage schedule (2N-2 dependent steps) amplifies per-step
// reliability costs (Appendix C).
//
// Each panel's grid runs on the sweep engine (`--jobs=N`); tables replay
// the records in grid order, so output is bit-identical at any job count.
#include <cstdio>

#include "bench_util.hpp"
#include "model/allreduce_model.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

namespace {

constexpr std::uint64_t kSeed = 0xF1613;
constexpr std::uint64_t kSamples = 800;

double tail_speedup(std::uint64_t datacenters, std::uint64_t buffer_bytes,
                    double p_drop) {
  model::AllreduceParams params;
  params.datacenters = datacenters;
  params.buffer_bytes = buffer_bytes;
  params.link.bandwidth_bps = 400 * Gbps;
  params.link.rtt_s = 0.025;  // neighbouring DCs 3750 km apart
  params.link.p_drop = p_drop;
  params.link.chunk_bytes = 4096;

  params.scheme = model::Scheme::kSrRto;
  const auto sr = model::allreduce_distribution(params, kSamples, kSeed);
  params.scheme = model::Scheme::kEcMds;
  const auto ec = model::allreduce_distribution(params, kSamples, kSeed + 1);
  return sr.p999 / ec.p999;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Figure 13",
                       "ring Allreduce p99.9 speedup, MDS EC over SR RTO "
                       "(400G links, 25 ms RTT per hop)",
                       kSeed);

  const std::vector<double> drops = {1e-6, 1e-5, 1e-4, 1e-3};
  double max_speedup = 0.0;

  {
    std::printf("\n--- left: 128 MiB buffer, datacenter sweep ---\n");
    sweep::ParamGrid grid;
    grid.axis_i64("datacenters", {2, 4, 8, 16}).axis_f64("p_drop", drops);
    const sweep::SweepResult result = sweep::run_sweep(
        grid, sweep_cli.options(kSeed), [](sweep::Trial& trial) {
          trial.record(
              "speedup",
              tail_speedup(
                  static_cast<std::uint64_t>(trial.params().i64("datacenters")),
                  128ull << 20, trial.params().f64("p_drop")));
        });
    sweep_cli.finish(result);
    if (result.failures() != 0) return 1;

    TextTable t({"datacenters", "p=1e-6", "p=1e-5", "p=1e-4", "p=1e-3"});
    std::size_t trial_index = 0;
    for (const std::uint64_t n : {2ull, 4ull, 8ull, 16ull}) {
      std::vector<std::string> row = {std::to_string(n)};
      for (std::size_t p = 0; p < drops.size(); ++p) {
        const double s = result.at(trial_index++).f64("speedup");
        row.push_back(bench::speedup_cell(s));
        max_speedup = std::max(max_speedup, s);
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  {
    std::printf("\n--- right: 4 datacenters, buffer-size sweep ---\n");
    sweep::ParamGrid grid;
    grid.axis_i64("buffer_mib", {32, 128, 512, 2048}).axis_f64("p_drop", drops);
    const sweep::SweepResult result = sweep::run_sweep(
        grid, sweep_cli.options(kSeed + 0x100), [](sweep::Trial& trial) {
          trial.record(
              "speedup",
              tail_speedup(
                  4,
                  static_cast<std::uint64_t>(trial.params().i64("buffer_mib"))
                      << 20,
                  trial.params().f64("p_drop")));
        });
    sweep_cli.finish(result);
    if (result.failures() != 0) return 1;

    TextTable t({"buffer", "p=1e-6", "p=1e-5", "p=1e-4", "p=1e-3"});
    std::size_t trial_index = 0;
    for (const std::uint64_t mib : {32ull, 128ull, 512ull, 2048ull}) {
      std::vector<std::string> row = {format_bytes(mib << 20)};
      for (std::size_t p = 0; p < drops.size(); ++p) {
        const double s = result.at(trial_index++).f64("speedup");
        row.push_back(bench::speedup_cell(s));
        max_speedup = std::max(max_speedup, s);
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  const bool ok = max_speedup > 3.0;
  std::printf("\nshape check: EC tail speedup grows with drop rate, "
              "exceeding 3x (paper: 3x to >6x): %s (max observed %.1fx)\n",
              ok ? "reproduced" : "MISSING", max_speedup);
  return ok ? 0 : 1;
}
