// Ablation: eager vs rendezvous small-message latency.
//
// The SDR middleware leaves control-path wireup to the reliability layer,
// "thereby enabling application-aware optimizations such as the optimized
// rendezvous protocol" (paper §4.1, citing [43]). The rendezvous (CTS-
// gated) data path costs an extra half round trip before the first byte
// moves; for latency-bound small messages the eager path sends the payload
// in the control datagram instead. This bench sweeps message sizes across
// a 3750 km link and reports the measured (virtual-time) receiver
// completion latency for both paths, locating the eager/rendezvous
// crossover an application should configure.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

double measure_latency(std::size_t bytes, std::size_t eager_threshold) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 3750.0;
  cfg.seed = 4;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);

  reliability::ReliableChannel::Options options;
  options.kind = reliability::ReliableChannel::Kind::kSrRto;
  options.profile.bandwidth_bps = cfg.bandwidth_bps;
  options.profile.rtt_s = rtt_s(cfg.distance_km);
  options.profile.mtu = 4096;
  options.profile.chunk_bytes = 4096;
  options.attr.mtu = 4096;
  options.attr.chunk_size = 4096;
  options.attr.max_msg_size = 16 * MiB;
  options.attr.max_inflight = 16;
  options.eager_threshold_bytes = eager_threshold;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nics.a, *nics.b, options);

  std::vector<std::uint8_t> src(bytes, 0x11), dst(bytes, 0);
  double arrival_s = -1.0;
  channel.recv(dst.data(), bytes, [&](const Status& s) {
    if (s.is_ok()) arrival_s = sim.now().seconds();
  });
  channel.send(src.data(), bytes, [](const Status&) {});
  sim.run();
  if (arrival_s < 0 || std::memcmp(dst.data(), src.data(), bytes) != 0) {
    return -1.0;
  }
  return arrival_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: eager vs rendezvous (§4.1, [43])",
                       "receiver completion latency, 400G x 3750 km "
                       "(RTT 37.5 ms), lossless");

  const double rtt = rtt_s(3750.0);
  TextTable t({"message", "rendezvous (CTS)", "eager", "saving",
               "vs one-way delay"});
  bool eager_wins_small = false;
  for (const std::size_t bytes : {256u, 1024u, 4000u}) {
    const double rendezvous = measure_latency(bytes, 0);
    const double eager = measure_latency(bytes, 4000);
    if (rendezvous < 0 || eager < 0) return 1;
    t.add_row({format_bytes(bytes), format_seconds(rendezvous),
               format_seconds(eager),
               bench::speedup_cell(rendezvous / eager),
               TextTable::num(eager / (rtt / 2.0), 3) + "x"});
    if (eager < rendezvous * 0.8) eager_wins_small = true;
  }
  // Above the datagram limit everything is rendezvous — same numbers.
  for (const std::size_t bytes : {64u * 1024u, 1024u * 1024u}) {
    const double rendezvous = measure_latency(bytes, 0);
    const double mixed = measure_latency(bytes, 4000);
    t.add_row({format_bytes(bytes), format_seconds(rendezvous),
               format_seconds(mixed), "1.00x (rendezvous)", "-"});
  }
  t.print();
  std::printf("\nshape check: the eager path saves the CTS half-round-trip "
              "for datagram-sized messages (receiver completes at ~1 "
              "one-way delay): %s\n",
              eager_wins_small ? "reproduced" : "MISSING");
  return eager_wins_small ? 0 : 1;
}
