// Ablation: SDR multi-channel over ECMP multi-path trunks (paper §3.4.1:
// "by spreading traffic across channel QPs, SDR could leverage
// intra-datacenter multi-pathing (e.g., ECMP) and multi-plane networks").
//
// A trunk of 4 parallel 100 Gbit/s paths connects two NICs; ECMP hashes
// each QP pair onto one path. A single-channel SDR QP rides one path
// (100G); adding channel QPs recruits more paths, up to the trunk's
// aggregate 400G. Completion time of a 64 MiB transfer is measured in
// virtual time per channel count, plus the path-usage census.
#include <cstdio>
#include <cstring>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/fabric.hpp"

using namespace sdr;  // NOLINT

namespace {

struct Outcome {
  double completion_s{0.0};
  std::size_t paths_used{0};
  bool ok{false};
};

Outcome run(std::size_t channels, std::size_t trunk_paths) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Nic* a = fabric.add_nic();
  verbs::Nic* b = fabric.add_nic();
  verbs::Fabric::LinkOptions link;
  link.config.bandwidth_bps = 100 * Gbps;  // per path
  link.config.distance_km = 100.0;
  link.paths = trunk_paths;
  link.path_skew_s = 10e-6;  // mildly unequal paths, as in real fabrics
  fabric.connect(a, b, link);

  core::Context ctx_a(*a, core::DevAttr{});
  core::Context ctx_b(*b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = 64 * MiB;
  attr.max_inflight = 16;
  attr.channels = channels;
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());

  const std::size_t len = 64 * MiB;
  std::vector<std::uint8_t> src(len), dst(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  core::RecvHandle* rh = nullptr;
  qb->recv_post(dst.data(), len, mr, &rh);
  core::SendHandle* sh = nullptr;
  qa->send_post(src.data(), len, 0, false, &sh);
  sim.run();

  Outcome out;
  out.ok = qb->recv_done(rh) &&
           std::memcmp(dst.data(), src.data(), len) == 0;
  out.completion_s = sim.now().seconds();
  // Census the paths of generation 0's channel QPs — the set one message
  // actually rides (other generations' QPs idle until slot reuse).
  std::set<sim::Channel*> used;
  const core::QpInfo ia = qa->info();
  const core::QpInfo ib = qb->info();
  for (std::size_t c = 0; c < channels && c < ia.data_qps.size(); ++c) {
    used.insert(a->route_to(b->id(), ia.data_qps[c], ib.data_qps[c]));
  }
  out.paths_used = used.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: multi-channel over ECMP (§3.4.1)",
                       "64 MiB transfer over a 4 x 100 Gbit/s trunk; "
                       "channel QPs recruit paths via the flow hash");

  TextTable t({"SDR channels", "paths used", "completion", "effective rate",
               "speedup vs 1 channel"});
  double base = 0.0;
  bool scaling_seen = false;
  for (const std::size_t channels : {1u, 2u, 4u, 8u, 16u}) {
    const Outcome o = run(channels, 4);
    if (!o.ok) {
      std::fprintf(stderr, "transfer failed at %zu channels\n", channels);
      return 1;
    }
    if (channels == 1) base = o.completion_s;
    const double rate = 64.0 * MiB * 8.0 / o.completion_s;
    t.add_row({std::to_string(channels), std::to_string(o.paths_used),
               format_seconds(o.completion_s), format_rate(rate),
               bench::speedup_cell(base / o.completion_s)});
    if (channels >= 4 && base / o.completion_s > 2.0) scaling_seen = true;
  }
  t.print();
  std::printf("\nshape check: multi-channel SDR recruits the trunk's "
              "aggregate bandwidth (>2x over one channel with >=4 channel "
              "QPs): %s\n(perfect 4x requires the flow hash to spread "
              "channels evenly; hash collisions cost a path, exactly like "
              "real ECMP)\n",
              scaling_seen ? "reproduced" : "MISSING");
  return scaling_seen ? 0 : 1;
}
