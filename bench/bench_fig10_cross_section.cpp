// Figure 10: detailed cross-sections of the Fig 9 grid at 400 Gbit/s,
// 25 ms RTT. Four panels:
//   (a) variable-size Writes at Pdrop = 1e-5: mean and p99.9 slowdowns
//   (b) 128 MiB Write, mean completion vs drop rate
//   (c) 128 MiB Write, p99.9 completion vs drop rate
//   (d) 128 MiB Write: MDS data/parity split sweep vs drop rate
// Paper headline: guided scheme choice improves mean by up to ~5-6.5x and
// p99.9 by up to ~12x; NACK recovers up to ~4x of SR's loss.
#include <cstdio>

#include "bench_util.hpp"
#include "model/protocols.hpp"

using namespace sdr;  // NOLINT

namespace {

constexpr std::uint64_t kSeed = 0xF16100;
constexpr std::uint64_t kSamples = 3000;

model::LinkParams base_link(double p) {
  model::LinkParams link;
  link.bandwidth_bps = 400 * Gbps;
  link.rtt_s = 0.025;
  link.chunk_bytes = 4096;
  link.p_drop = p;
  return link;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 10",
                       "cross-sections: mean + tail completion, NACK gain, "
                       "MDS split sweep (400G, 25 ms RTT)",
                       kSeed);

  // (a) size sweep at 1e-5: mean and p99.9 slowdown per scheme.
  {
    std::printf("\n--- (a) size sweep, Pdrop = 1e-5 (slowdown vs ideal: "
                "mean / p99.9) ---\n");
    TextTable t({"message", "SR RTO", "SR NACK", "EC MDS(32,8)"});
    for (std::uint64_t bytes = 4 * MiB; bytes <= 8ull * GiB; bytes *= 4) {
      const model::LinkParams link = base_link(1e-5);
      const std::uint64_t chunks = bytes / link.chunk_bytes;
      const double ideal = model::ideal_completion_s(link, chunks);
      std::vector<std::string> row = {format_bytes(bytes)};
      for (auto scheme : {model::Scheme::kSrRto, model::Scheme::kSrNack,
                          model::Scheme::kEcMds}) {
        const auto dist = model::sample_distribution(scheme, link, chunks,
                                                     kSamples, kSeed);
        char cell[48];
        std::snprintf(cell, sizeof(cell), "%.2fx / %.2fx", dist.mean / ideal,
                      dist.p999 / ideal);
        row.push_back(cell);
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  const std::uint64_t chunks_128mib = (128ull << 20) / 4096;
  double max_mean_gain = 0.0, max_tail_gain = 0.0, max_nack_gain = 0.0;

  // (b)+(c): 128 MiB vs drop rate, mean and p99.9.
  {
    std::printf("\n--- (b)(c) 128 MiB Write vs drop rate "
                "(mean seconds | p99.9 seconds) ---\n");
    TextTable t({"Pdrop", "SR RTO", "SR NACK", "EC MDS(32,8)", "ideal"});
    for (double p = 1e-7; p <= 0.011; p *= 10.0) {
      const model::LinkParams link = base_link(p);
      const double ideal = model::ideal_completion_s(link, chunks_128mib);
      std::vector<std::string> row = {TextTable::sci(p, 0)};
      double sr_mean = 0, sr_tail = 0, nack_mean = 0, ec_mean = 0,
             ec_tail = 0;
      for (auto scheme : {model::Scheme::kSrRto, model::Scheme::kSrNack,
                          model::Scheme::kEcMds}) {
        const auto dist = model::sample_distribution(
            scheme, link, chunks_128mib, kSamples, kSeed);
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%s | %s",
                      format_seconds(dist.mean).c_str(),
                      format_seconds(dist.p999).c_str());
        row.push_back(cell);
        if (scheme == model::Scheme::kSrRto) {
          sr_mean = dist.mean;
          sr_tail = dist.p999;
        } else if (scheme == model::Scheme::kSrNack) {
          nack_mean = dist.mean;
        } else {
          ec_mean = dist.mean;
          ec_tail = dist.p999;
        }
      }
      row.push_back(format_seconds(ideal));
      t.add_row(std::move(row));
      max_mean_gain = std::max(max_mean_gain, sr_mean / ec_mean);
      max_tail_gain = std::max(max_tail_gain, sr_tail / ec_tail);
      max_nack_gain = std::max(max_nack_gain, sr_mean / nack_mean);
    }
    t.print();
    std::printf("\nheadline gains at 128 MiB: EC over SR mean up to %.1fx "
                "(paper ~6.5x), p99.9 up to %.1fx (paper ~12.2x); NACK over "
                "RTO up to %.1fx (paper ~4x)\n",
                max_mean_gain, max_tail_gain, max_nack_gain);
  }

  // (d) MDS split sweep.
  {
    std::printf("\n--- (d) 128 MiB: MDS (k,m) split sweep — mean slowdown "
                "vs ideal; bandwidth inflation in header ---\n");
    const std::pair<std::size_t, std::size_t> splits[] = {
        {32, 2}, {32, 4}, {32, 8}, {16, 8}, {8, 8}};
    std::vector<std::string> headers = {"Pdrop"};
    for (const auto& [k, m] : splits) {
      char h[48];
      std::snprintf(h, sizeof(h), "(%zu,%zu) +%.0f%%", k, m,
                    100.0 * static_cast<double>(m) / static_cast<double>(k));
      headers.push_back(h);
    }
    TextTable t(headers);
    for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 3e-2}) {
      const model::LinkParams link = base_link(p);
      const double ideal = model::ideal_completion_s(link, chunks_128mib);
      std::vector<std::string> row = {TextTable::sci(p, 0)};
      for (const auto& [k, m] : splits) {
        model::SchemeParams params;
        params.ec.k = k;
        params.ec.m = m;
        const double mean = model::expected_completion_s(
            model::Scheme::kEcMds, link, chunks_128mib, params);
        row.push_back(bench::speedup_cell(mean / ideal));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nshape: lower data-to-parity ratios protect higher drop "
                "rates at more bandwidth; (32,8) is the balanced choice "
                "(tolerates >1e-2 at +25%% parity).\n");
  }

  const bool ok = max_mean_gain > 3.0 && max_tail_gain > 5.0;
  std::printf("\nshape check (EC gains at 128 MiB: mean >3x, tail >5x): %s\n",
              ok ? "reproduced" : "MISSING");
  return ok ? 0 : 1;
}
