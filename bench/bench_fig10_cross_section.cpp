// Figure 10: detailed cross-sections of the Fig 9 grid at 400 Gbit/s,
// 25 ms RTT. Four panels:
//   (a) variable-size Writes at Pdrop = 1e-5: mean and p99.9 slowdowns
//   (b) 128 MiB Write, mean completion vs drop rate
//   (c) 128 MiB Write, p99.9 completion vs drop rate
//   (d) 128 MiB Write: MDS data/parity split sweep vs drop rate
// Paper headline: guided scheme choice improves mean by up to ~5-6.5x and
// p99.9 by up to ~12x; NACK recovers up to ~4x of SR's loss.
//
// Each panel's grid runs on the sweep engine (`--jobs=N`). Every cell keeps
// the bench's historical fixed sampling seed (kSeed), so stdout is
// byte-identical to the serial version at any job count.
#include <cstdio>

#include "bench_util.hpp"
#include "model/protocols.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

namespace {

constexpr std::uint64_t kSeed = 0xF16100;
constexpr std::uint64_t kSamples = 3000;

model::LinkParams base_link(double p) {
  model::LinkParams link;
  link.bandwidth_bps = 400 * Gbps;
  link.rtt_s = 0.025;
  link.chunk_bytes = 4096;
  link.p_drop = p;
  return link;
}

model::Scheme scheme_from(const std::string& name) {
  if (name == "sr_rto") return model::Scheme::kSrRto;
  if (name == "sr_nack") return model::Scheme::kSrNack;
  return model::Scheme::kEcMds;
}

const std::vector<std::string> kSchemes = {"sr_rto", "sr_nack", "ec_mds"};

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Figure 10",
                       "cross-sections: mean + tail completion, NACK gain, "
                       "MDS split sweep (400G, 25 ms RTT)",
                       kSeed);

  // (a) size sweep at 1e-5: mean and p99.9 slowdown per scheme.
  {
    std::printf("\n--- (a) size sweep, Pdrop = 1e-5 (slowdown vs ideal: "
                "mean / p99.9) ---\n");
    std::vector<std::int64_t> sizes;
    for (std::uint64_t bytes = 4 * MiB; bytes <= 8ull * GiB; bytes *= 4) {
      sizes.push_back(static_cast<std::int64_t>(bytes));
    }
    sweep::ParamGrid grid;
    grid.axis_i64("bytes", sizes).axis_str("scheme", kSchemes);
    const sweep::SweepResult result = sweep::run_sweep(
        grid, sweep_cli.options(kSeed), [](sweep::Trial& trial) {
          const model::LinkParams link = base_link(1e-5);
          const std::uint64_t chunks =
              static_cast<std::uint64_t>(trial.params().i64("bytes")) /
              link.chunk_bytes;
          // Historical per-cell seed: every cell samples with kSeed, which
          // is what the serial bench printed. trial.seed() stays available
          // for future decorrelated modes.
          const auto dist = model::sample_distribution(
              scheme_from(trial.params().str("scheme")), link, chunks,
              kSamples, kSeed);
          trial.record("mean_s", dist.mean);
          trial.record("p999_s", dist.p999);
          trial.record("ideal_s", model::ideal_completion_s(link, chunks));
        });
    sweep_cli.finish(result);

    TextTable t({"message", "SR RTO", "SR NACK", "EC MDS(32,8)"});
    std::size_t trial_index = 0;
    for (const std::int64_t bytes : sizes) {
      std::vector<std::string> row = {
          format_bytes(static_cast<std::uint64_t>(bytes))};
      for (std::size_t s = 0; s < kSchemes.size(); ++s) {
        const sweep::TrialRecord& rec = result.at(trial_index++);
        const double ideal = rec.f64("ideal_s");
        char cell[48];
        std::snprintf(cell, sizeof(cell), "%.2fx / %.2fx",
                      rec.f64("mean_s") / ideal, rec.f64("p999_s") / ideal);
        row.push_back(cell);
      }
      t.add_row(std::move(row));
    }
    t.print();
    if (result.failures() != 0) return 1;
  }

  const std::uint64_t chunks_128mib = (128ull << 20) / 4096;
  double max_mean_gain = 0.0, max_tail_gain = 0.0, max_nack_gain = 0.0;

  // (b)+(c): 128 MiB vs drop rate, mean and p99.9.
  {
    std::printf("\n--- (b)(c) 128 MiB Write vs drop rate "
                "(mean seconds | p99.9 seconds) ---\n");
    // Axis values come from the original multiplicative loop so the exact
    // doubles (and thus the sampled distributions) are unchanged.
    std::vector<double> drops;
    for (double p = 1e-7; p <= 0.011; p *= 10.0) drops.push_back(p);
    sweep::ParamGrid grid;
    grid.axis_f64("p_drop", drops).axis_str("scheme", kSchemes);
    const sweep::SweepResult result = sweep::run_sweep(
        grid, sweep_cli.options(kSeed), [chunks_128mib](sweep::Trial& trial) {
          const model::LinkParams link =
              base_link(trial.params().f64("p_drop"));
          const auto dist = model::sample_distribution(
              scheme_from(trial.params().str("scheme")), link, chunks_128mib,
              kSamples, kSeed);
          trial.record("mean_s", dist.mean);
          trial.record("p999_s", dist.p999);
        });
    sweep_cli.finish(result);

    TextTable t({"Pdrop", "SR RTO", "SR NACK", "EC MDS(32,8)", "ideal"});
    std::size_t trial_index = 0;
    for (const double p : drops) {
      const model::LinkParams link = base_link(p);
      const double ideal = model::ideal_completion_s(link, chunks_128mib);
      std::vector<std::string> row = {TextTable::sci(p, 0)};
      double sr_mean = 0, sr_tail = 0, nack_mean = 0, ec_mean = 0,
             ec_tail = 0;
      for (const std::string& scheme : kSchemes) {
        const sweep::TrialRecord& rec = result.at(trial_index++);
        const double mean = rec.f64("mean_s");
        const double tail = rec.f64("p999_s");
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%s | %s",
                      format_seconds(mean).c_str(),
                      format_seconds(tail).c_str());
        row.push_back(cell);
        if (scheme == "sr_rto") {
          sr_mean = mean;
          sr_tail = tail;
        } else if (scheme == "sr_nack") {
          nack_mean = mean;
        } else {
          ec_mean = mean;
          ec_tail = tail;
        }
      }
      row.push_back(format_seconds(ideal));
      t.add_row(std::move(row));
      max_mean_gain = std::max(max_mean_gain, sr_mean / ec_mean);
      max_tail_gain = std::max(max_tail_gain, sr_tail / ec_tail);
      max_nack_gain = std::max(max_nack_gain, sr_mean / nack_mean);
    }
    t.print();
    std::printf("\nheadline gains at 128 MiB: EC over SR mean up to %.1fx "
                "(paper ~6.5x), p99.9 up to %.1fx (paper ~12.2x); NACK over "
                "RTO up to %.1fx (paper ~4x)\n",
                max_mean_gain, max_tail_gain, max_nack_gain);
    if (result.failures() != 0) return 1;
  }

  // (d) MDS split sweep.
  {
    std::printf("\n--- (d) 128 MiB: MDS (k,m) split sweep — mean slowdown "
                "vs ideal; bandwidth inflation in header ---\n");
    const std::pair<std::size_t, std::size_t> splits[] = {
        {32, 2}, {32, 4}, {32, 8}, {16, 8}, {8, 8}};
    std::vector<std::string> headers = {"Pdrop"};
    std::vector<std::int64_t> split_idx;
    for (const auto& [k, m] : splits) {
      char h[48];
      std::snprintf(h, sizeof(h), "(%zu,%zu) +%.0f%%", k, m,
                    100.0 * static_cast<double>(m) / static_cast<double>(k));
      headers.push_back(h);
      split_idx.push_back(static_cast<std::int64_t>(split_idx.size()));
    }
    const std::vector<double> drops = {1e-5, 1e-4, 1e-3, 1e-2, 3e-2};
    sweep::ParamGrid grid;
    grid.axis_f64("p_drop", drops).axis_i64("split", split_idx);
    const sweep::SweepResult result = sweep::run_sweep(
        grid, sweep_cli.options(kSeed),
        [chunks_128mib, &splits](sweep::Trial& trial) {
          const model::LinkParams link =
              base_link(trial.params().f64("p_drop"));
          const auto& [k, m] =
              splits[static_cast<std::size_t>(trial.params().i64("split"))];
          model::SchemeParams params;
          params.ec.k = k;
          params.ec.m = m;
          trial.record("mean_s", model::expected_completion_s(
                                     model::Scheme::kEcMds, link,
                                     chunks_128mib, params));
          trial.record("ideal_s",
                       model::ideal_completion_s(link, chunks_128mib));
        });
    sweep_cli.finish(result);

    TextTable t(headers);
    std::size_t trial_index = 0;
    for (const double p : drops) {
      std::vector<std::string> row = {TextTable::sci(p, 0)};
      for (std::size_t s = 0; s < split_idx.size(); ++s) {
        const sweep::TrialRecord& rec = result.at(trial_index++);
        row.push_back(bench::speedup_cell(rec.f64("mean_s") /
                                          rec.f64("ideal_s")));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nshape: lower data-to-parity ratios protect higher drop "
                "rates at more bandwidth; (32,8) is the balanced choice "
                "(tolerates >1e-2 at +25%% parity).\n");
    if (result.failures() != 0) return 1;
  }

  const bool ok = max_mean_gain > 3.0 && max_tail_gain > 5.0;
  std::printf("\nshape check (EC gains at 128 MiB: mean >3x, tail >5x): %s\n",
              ok ? "reproduced" : "MISSING");
  return ok ? 0 : 1;
}
