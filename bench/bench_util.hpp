// Shared helpers for the figure-regeneration bench harness.
//
// Each bench binary regenerates one figure of the paper and prints the same
// rows/series the paper reports, as aligned text tables. Shapes (who wins,
// crossovers, scaling slopes) are the reproduction target; absolute numbers
// differ from the authors' BlueField-3 testbed (see DESIGN.md §1).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::bench {

/// Opt-in telemetry capture for every fig/ablation binary.
///
/// Declare one at the top of main:
///
///   int main(int argc, char** argv) {
///     sdr::bench::TelemetrySession telemetry(&argc, argv);
///     ...
///   }
///
/// It strips `--telemetry-out=<dir>` (and optional
/// `--telemetry-period=<sim-seconds>`, default 1e-3) from argv. When the
/// flag is absent the session is inert and the bench runs with telemetry
/// disabled — the zero-overhead path. When present it enables the metric
/// registry, arms the packet tracer, and on destruction writes
/// `metrics.jsonl`, `trace.jsonl`, and `timeseries.csv` into the directory.
///
/// Two further flags are independent of `--telemetry-out`:
///   --trace-perfetto=<file>  arm the causal span recorder and write a
///                            Chrome trace-event JSON (open it in Perfetto
///                            or chrome://tracing) at destruction.
///   --profile                arm the hot-loop profiler and print a
///                            wall-clock self-time table per subsystem
///                            category to stderr at destruction.
///
/// Benches that drive a simulator can additionally sample a periodic time
/// series via `TelemetrySession::attach_sampler(sim)`.
class TelemetrySession {
 public:
  TelemetrySession(int* argc, char** argv) {
    int out = 1;
    for (int in = 1; in < *argc; ++in) {
      const char* arg = argv[in];
      if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
        out_dir_ = arg + 16;
      } else if (std::strncmp(arg, "--telemetry-period=", 19) == 0) {
        period_s_ = std::strtod(arg + 19, nullptr);
      } else if (std::strncmp(arg, "--trace-perfetto=", 17) == 0) {
        perfetto_path_ = arg + 17;
      } else if (std::strcmp(arg, "--profile") == 0) {
        profile_ = true;
      } else {
        argv[out++] = argv[in];
      }
    }
    *argc = out;
    argv[out] = nullptr;
    if (!perfetto_path_.empty()) telemetry::spans().arm();
    if (profile_) telemetry::profiler().arm();
    if (out_dir_.empty()) {
      if (!perfetto_path_.empty() || profile_) instance_ = this;
      return;
    }

    active_ = true;
    telemetry::registry().enable();
    telemetry::tracer().arm();
    sampler_ = std::make_unique<telemetry::Sampler>(telemetry::registry(),
                                                    period_s_);
    instance_ = this;
  }

  ~TelemetrySession() {
    if (!perfetto_path_.empty()) {
      const std::string json = telemetry::spans().to_chrome_json();
      std::FILE* f = std::fopen(perfetto_path_.c_str(), "w");
      if (f) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr,
                     "[telemetry] wrote %zu spans (%llu truncated) to %s\n",
                     telemetry::spans().size(),
                     static_cast<unsigned long long>(
                         telemetry::spans().truncated()),
                     perfetto_path_.c_str());
      } else {
        std::fprintf(stderr, "[telemetry] cannot write %s\n",
                     perfetto_path_.c_str());
      }
      telemetry::spans().disarm();
    }
    if (profile_) {
      std::fprintf(stderr, "%s", telemetry::profiler().table().c_str());
      telemetry::profiler().disarm();
    }
    if (!active_) {
      if (instance_ == this) instance_ = nullptr;
      return;
    }
    instance_ = nullptr;
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    // A bench that ran its grid through the sweep engine captured telemetry
    // per trial; the merged, trial-labeled exports replace the process-wide
    // instances (which such a run leaves empty by design).
    write_file("metrics.jsonl", adopted_ ? sweep_metrics_jsonl_
                                         : telemetry::registry().to_jsonl());
    write_file("trace.jsonl", adopted_ ? sweep_trace_jsonl_
                                       : telemetry::tracer().to_jsonl());
    write_file("timeseries.csv",
               adopted_ ? sweep_timeseries_csv_ : sampler_->to_csv());
    std::fprintf(stderr, "[telemetry] wrote metrics.jsonl, trace.jsonl, "
                         "timeseries.csv to %s\n", out_dir_.c_str());
    telemetry::tracer().disarm();
    telemetry::registry().disable();
  }

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  bool active() const { return active_; }

  /// The live session, if any — lets bench helpers deep in a run attach the
  /// periodic sampler to the simulator they just built.
  static TelemetrySession* instance() { return instance_; }

  template <class Sim>
  void attach_sampler(Sim& sim) {
    if (active_) sampler_->attach(sim);
  }

  /// Convenience: attach to `sim` if a session is live, no-op otherwise.
  template <class Sim>
  static void attach(Sim& sim) {
    if (instance_) instance_->attach_sampler(sim);
  }

  /// Merge a sweep's per-trial telemetry into this session's output files.
  /// May be called once per sweep; sections accumulate in call order.
  void adopt_sweep(const sweep::SweepResult& result) {
    if (!active_) return;
    adopted_ = true;
    sweep_metrics_jsonl_ += result.merged_metrics_jsonl();
    sweep_trace_jsonl_ += result.merged_trace_jsonl();
    sweep_timeseries_csv_ += result.merged_timeseries_csv();
  }

 private:
  void write_file(const char* name, const std::string& body) {
    const std::filesystem::path path =
        std::filesystem::path(out_dir_) / name;
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "[telemetry] cannot write %s\n",
                   path.string().c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }

  inline static TelemetrySession* instance_ = nullptr;
  std::string out_dir_;
  std::string perfetto_path_;
  double period_s_{1e-3};
  bool active_{false};
  bool profile_{false};
  bool adopted_{false};
  std::string sweep_metrics_jsonl_;
  std::string sweep_trace_jsonl_;
  std::string sweep_timeseries_csv_;
  std::unique_ptr<telemetry::Sampler> sampler_;
};

/// Sweep-engine command line for grid benches. Declare after the
/// TelemetrySession:
///
///   sdr::bench::TelemetrySession telemetry(&argc, argv);
///   sdr::bench::SweepCli sweep_cli(&argc, argv);
///   ...
///   auto result = sweep::run_sweep(grid, sweep_cli.options(kSeed), fn);
///   sweep_cli.finish(result);
///
/// Strips `--jobs=N` (worker threads, default 1; 0 = all cores) and
/// `--sweep-out=<dir>` (write the aggregator's ordered sweep.jsonl +
/// sweep.csv there). finish() also merges per-trial telemetry into a live
/// TelemetrySession. Results are bit-identical at every --jobs value.
class SweepCli {
 public:
  SweepCli(int* argc, char** argv) {
    int out = 1;
    for (int in = 1; in < *argc; ++in) {
      const char* arg = argv[in];
      if (std::strncmp(arg, "--jobs=", 7) == 0) {
        jobs_ = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
      } else if (std::strncmp(arg, "--sweep-out=", 12) == 0) {
        out_dir_ = arg + 12;
      } else {
        argv[out++] = argv[in];
      }
    }
    *argc = out;
    argv[out] = nullptr;
  }

  unsigned jobs() const { return jobs_; }

  sweep::SweepOptions options(std::uint64_t base_seed) const {
    sweep::SweepOptions opt;
    opt.jobs = jobs_;
    opt.base_seed = base_seed;
    opt.capture_telemetry = TelemetrySession::instance() != nullptr;
    return opt;
  }

  /// Writes/appends the aggregated outputs of one finished sweep. Call once
  /// per sweep; multi-sweep benches get concatenated sections.
  void finish(const sweep::SweepResult& result) {
    if (TelemetrySession* session = TelemetrySession::instance()) {
      session->adopt_sweep(result);
    }
    if (out_dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    append_file("sweep.jsonl", result.to_jsonl());
    if (sweeps_written_ > 0) append_file("sweep.csv", "\n");
    append_file("sweep.csv", result.to_csv());
    ++sweeps_written_;
  }

 private:
  void append_file(const char* name, const std::string& body) {
    const std::filesystem::path path =
        std::filesystem::path(out_dir_) / name;
    std::FILE* f =
        std::fopen(path.string().c_str(), sweeps_written_ == 0 ? "w" : "a");
    if (!f) {
      std::fprintf(stderr, "[sweep] cannot write %s\n",
                   path.string().c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }

  unsigned jobs_{1};
  std::string out_dir_;
  int sweeps_written_{0};
};

inline void figure_header(const char* figure, const char* description,
                          std::uint64_t seed = 0) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  if (seed != 0) {
    std::printf("(deterministic: seed %llu)\n",
                static_cast<unsigned long long>(seed));
  }
  std::printf("=====================================================\n");
}

inline std::string speedup_cell(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace sdr::bench
