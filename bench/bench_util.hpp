// Shared helpers for the figure-regeneration bench harness.
//
// Each bench binary regenerates one figure of the paper and prints the same
// rows/series the paper reports, as aligned text tables. Shapes (who wins,
// crossovers, scaling slopes) are the reproduction target; absolute numbers
// differ from the authors' BlueField-3 testbed (see DESIGN.md §1).
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"

namespace sdr::bench {

inline void figure_header(const char* figure, const char* description,
                          std::uint64_t seed = 0) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  if (seed != 0) {
    std::printf("(deterministic: seed %llu)\n",
                static_cast<unsigned long long>(seed));
  }
  std::printf("=====================================================\n");
}

inline std::string speedup_cell(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace sdr::bench
