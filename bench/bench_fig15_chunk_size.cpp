// Figure 15: impact of the SDR bitmap chunk size on throughput and on the
// theoretical chunk drop probability (Pdrop = 1e-5 per packet).
//
// Paper findings to reproduce:
//   * the DPA worker's per-CQE cost is independent of chunk size (workers
//     process completions, not payload), so 16 threads sustain line rate
//     from 1-packet chunks to 64-packet chunks;
//   * larger chunks amplify the observed drop probability as
//     P_chunk = 1 - (1 - p)^N while reducing host (PCIe) bitmap traffic.
#include <cstdio>

#include "bench_util.hpp"
#include "dpa/calibrate.hpp"
#include "ec/probability.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 15",
                       "bitmap chunk size: measured per-CQE cost, projected "
                       "16-thread packet rate, chunk drop probability");

  constexpr double kPacketDrop = 1e-5;
  constexpr std::size_t kThreads = 16;

  TextTable t({"chunk (packets)", "chunk (bytes)", "per-CQE ns (measured)",
               "16-thread rate", "host bitmap updates / packet",
               "P_drop_chunk"});
  double min_cost = 1e30, max_cost = 0.0;
  for (const std::size_t packets_per_chunk : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    core::QpAttr attr;
    attr.mtu = 4096;
    attr.chunk_size = attr.mtu * packets_per_chunk;
    attr.max_msg_size = attr.chunk_size * 64;
    attr.max_inflight = 16;
    const dpa::Calibration cal = dpa::calibrate(attr, 1u << 19);
    min_cost = std::min(min_cost, cal.ns_per_cqe);
    max_cost = std::max(max_cost, cal.ns_per_cqe);
    const double rate = dpa::achievable_packet_rate(cal, kThreads);
    t.add_row({std::to_string(packets_per_chunk),
               format_bytes(attr.chunk_size),
               TextTable::num(cal.ns_per_cqe, 3),
               TextTable::num(rate / 1e6, 3) + " Mpps",
               TextTable::num(1.0 / static_cast<double>(packets_per_chunk), 3),
               TextTable::sci(
                   ec::chunk_drop_probability(kPacketDrop, packets_per_chunk),
                   2)});
  }
  t.print();

  const double wire_pps = dpa::wire_packet_rate(400e9, 4096);
  std::printf("\n400 Gbit/s wire packet rate at 4 KiB MTU: %.1f Mpps "
              "(paper: 11.6 Mpps)\n",
              wire_pps / 1e6);
  // Per-CQE cost must be chunk-size independent (within measurement noise).
  const bool flat = max_cost / min_cost < 1.8;
  std::printf("shape check: per-CQE cost independent of chunk size "
              "(max/min = %.2f): %s\n",
              max_cost / min_cost, flat ? "reproduced" : "MISSING");
  std::printf("shape check: P_drop_chunk follows 1-(1-p)^N, trading drop "
              "amplification for fewer host bitmap updates: see last two "
              "columns.\n");
  return flat ? 0 : 1;
}
