// Figure 12: impact of inter-datacenter distance and bandwidth on a
// 128 MiB Write, normalized by the lossless completion time. Paper shape:
// with growing distance or bandwidth (growing BDP), the 128 MiB message
// becomes latency-dominated and EC overtakes SR; at short distances the
// schemes tie near 1x.
#include <cstdio>

#include "bench_util.hpp"
#include "model/protocols.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 12",
                       "128 MiB Write completion normalized to lossless, "
                       "distance x bandwidth grid, Pdrop = 1e-5");

  const double bandwidths[] = {100e9, 400e9, 1600e9};
  bool crossover_seen = false;

  for (const double bw : bandwidths) {
    std::printf("\n--- %s ---\n", format_rate(bw).c_str());
    TextTable t({"distance", "BDP", "SR RTO", "SR NACK", "EC MDS(32,8)",
                 "winner"});
    for (const double km : {10.0, 100.0, 500.0, 1000.0, 2000.0, 3750.0,
                            7500.0, 15000.0}) {
      model::LinkParams link;
      link.bandwidth_bps = bw;
      link.rtt_s = rtt_s(km);
      link.p_drop = 1e-5;
      link.chunk_bytes = 4096;
      const std::uint64_t chunks = (128ull << 20) / link.chunk_bytes;
      const double ideal = model::ideal_completion_s(link, chunks);
      const double sr =
          model::expected_completion_s(model::Scheme::kSrRto, link, chunks);
      const double nack =
          model::expected_completion_s(model::Scheme::kSrNack, link, chunks);
      const double ec =
          model::expected_completion_s(model::Scheme::kEcMds, link, chunks);
      const char* winner = ec < sr && ec < nack ? "EC"
                           : (nack < sr ? "SR NACK" : "SR RTO");
      char dist[32];
      std::snprintf(dist, sizeof(dist), "%5.0f km", km);
      t.add_row({dist,
                 format_bytes(static_cast<std::uint64_t>(
                     bdp_bytes(bw, link.rtt_s))),
                 bench::speedup_cell(sr / ideal),
                 bench::speedup_cell(nack / ideal),
                 bench::speedup_cell(ec / ideal), winner});
      if (ec < sr && km >= 2000.0) crossover_seen = true;
    }
    t.print();
  }
  std::printf("\nshape check: EC overtakes SR as BDP grows (long distance / "
              "high bandwidth): %s\n",
              crossover_seen ? "reproduced" : "MISSING");
  return crossover_seen ? 0 : 1;
}
