// Figure 12: impact of inter-datacenter distance and bandwidth on a
// 128 MiB Write, normalized by the lossless completion time. Paper shape:
// with growing distance or bandwidth (growing BDP), the 128 MiB message
// becomes latency-dominated and EC overtakes SR; at short distances the
// schemes tie near 1x.
//
// The bandwidth x distance grid runs on the sweep engine (`--jobs=N`);
// table assembly replays the records in grid order, so output is
// bit-identical at every job count.
#include <cstdio>

#include "bench_util.hpp"
#include "model/protocols.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Figure 12",
                       "128 MiB Write completion normalized to lossless, "
                       "distance x bandwidth grid, Pdrop = 1e-5");

  const std::vector<double> bandwidths = {100e9, 400e9, 1600e9};
  const std::vector<double> distances = {10.0,   100.0,  500.0,  1000.0,
                                         2000.0, 3750.0, 7500.0, 15000.0};

  sweep::ParamGrid grid;
  grid.axis_f64("bw_bps", bandwidths).axis_f64("km", distances);

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xF16012), [](sweep::Trial& trial) {
        model::LinkParams link;
        link.bandwidth_bps = trial.params().f64("bw_bps");
        link.rtt_s = rtt_s(trial.params().f64("km"));
        link.p_drop = 1e-5;
        link.chunk_bytes = 4096;
        const std::uint64_t chunks = (128ull << 20) / link.chunk_bytes;
        trial.record("ideal_s", model::ideal_completion_s(link, chunks));
        trial.record("sr_s", model::expected_completion_s(
                                 model::Scheme::kSrRto, link, chunks));
        trial.record("nack_s", model::expected_completion_s(
                                   model::Scheme::kSrNack, link, chunks));
        trial.record("ec_s", model::expected_completion_s(
                                 model::Scheme::kEcMds, link, chunks));
      });
  sweep_cli.finish(result);

  bool crossover_seen = false;
  std::size_t trial_index = 0;
  for (const double bw : bandwidths) {
    std::printf("\n--- %s ---\n", format_rate(bw).c_str());
    TextTable t({"distance", "BDP", "SR RTO", "SR NACK", "EC MDS(32,8)",
                 "winner"});
    for (const double km : distances) {
      const sweep::TrialRecord& rec = result.at(trial_index++);
      const double ideal = rec.f64("ideal_s");
      const double sr = rec.f64("sr_s");
      const double nack = rec.f64("nack_s");
      const double ec = rec.f64("ec_s");
      const char* winner = ec < sr && ec < nack ? "EC"
                           : (nack < sr ? "SR NACK" : "SR RTO");
      char dist[32];
      std::snprintf(dist, sizeof(dist), "%5.0f km", km);
      t.add_row({dist,
                 format_bytes(static_cast<std::uint64_t>(
                     bdp_bytes(bw, rtt_s(km)))),
                 bench::speedup_cell(sr / ideal),
                 bench::speedup_cell(nack / ideal),
                 bench::speedup_cell(ec / ideal), winner});
      if (ec < sr && km >= 2000.0) crossover_seen = true;
    }
    t.print();
  }
  std::printf("\nshape check: EC overtakes SR as BDP grows (long distance / "
              "high bandwidth): %s\n",
              crossover_seen ? "reproduced" : "MISSING");
  return (crossover_seen && result.failures() == 0) ? 0 : 1;
}
