// Ablation: ring vs binary-tree Allreduce schedules under lossy long-haul
// links. Appendix C's accumulation argument applies to any stage-based
// schedule; the ring pays 2N-2 small (bandwidth-optimal) stages, the tree
// 2*ceil(log2 N) full-buffer (latency-optimal) stages. The reliability
// scheme interacts with the schedule: SR's RTT-scale drop penalty hits the
// ring's many dependent stages harder, which is exactly why the paper's
// Fig 13 gains compound.
#include <cstdio>

#include "bench_util.hpp"
#include "model/allreduce_model.hpp"

using namespace sdr;  // NOLINT

namespace {

constexpr std::uint64_t kSeed = 0xAB1A7E;
constexpr std::uint64_t kSamples = 500;

model::AllreduceParams base(std::uint64_t n, std::uint64_t buffer,
                            double p_drop, model::Scheme scheme) {
  model::AllreduceParams params;
  params.datacenters = n;
  params.buffer_bytes = buffer;
  params.link.bandwidth_bps = 400 * Gbps;
  params.link.rtt_s = 0.025;
  params.link.p_drop = p_drop;
  params.link.chunk_bytes = 4096;
  params.scheme = scheme;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: ring vs tree Allreduce schedules",
                       "mean | p99.9 completion across buffer sizes and "
                       "drop rates (400G, 25 ms RTT hops)",
                       kSeed);

  for (const model::Scheme scheme :
       {model::Scheme::kSrRto, model::Scheme::kEcMds}) {
    std::printf("\n--- scheme: %s, 8 datacenters ---\n",
                model::scheme_name(scheme).c_str());
    TextTable t({"buffer", "Pdrop", "ring mean | p99.9",
                 "tree mean | p99.9", "winner (mean)"});
    for (const std::uint64_t mib : {16ull, 128ull, 1024ull, 65536ull}) {
      for (const double p : {1e-6, 1e-4}) {
        const auto params = base(8, mib << 20, p, scheme);
        const auto ring =
            model::allreduce_distribution(params, kSamples, kSeed);
        const auto tree =
            model::tree_allreduce_distribution(params, kSamples, kSeed + 1);
        char rc[64], tc[64];
        std::snprintf(rc, sizeof(rc), "%s | %s",
                      format_seconds(ring.mean).c_str(),
                      format_seconds(ring.p999).c_str());
        std::snprintf(tc, sizeof(tc), "%s | %s",
                      format_seconds(tree.mean).c_str(),
                      format_seconds(tree.p999).c_str());
        t.add_row({format_bytes(mib << 20), TextTable::sci(p, 0), rc, tc,
                   ring.mean < tree.mean ? "ring" : "tree"});
      }
    }
    t.print();
  }
  std::printf("\nshape: the tree wins while the RTT dominates segments "
              "(small/medium buffers at 25 ms hops); the ring wins once "
              "segment injection dominates. Reliability costs accumulate "
              "per dependent stage in both schedules (Appendix C).\n");
  return 0;
}
