// Ablation: burst (Gilbert-Elliott) vs i.i.d. loss at the same average
// drop rate. The paper's model assumes i.i.d. chunk drops (§4.2.1) and its
// bitmap chunking can "mask drop bursts within the same chunk" (§3.1.1).
// This ablation runs the EXECUTABLE protocols over both loss processes:
// bursts concentrate losses into few submessages, which helps SR (fewer
// affected RTOs than spread losses) but stresses EC codes whose per-
// submessage tolerance is exceeded by a burst.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct RunStats {
  double completion_s{0.0};
  std::uint64_t retransmissions{0};
  bool ok{false};
};

RunStats run(reliability::ReliableChannel::Kind kind, bool bursty,
             std::uint64_t seed) {
  sim::Simulator sim;
  bench::TelemetrySession::attach(sim);
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 1000.0;
  cfg.seed = seed;

  // Average loss ~1e-3 in both processes; the bursty channel spends ~1% of
  // packets in a bad state losing 10% of them.
  std::unique_ptr<sim::DropModel> fwd;
  if (bursty) {
    fwd = std::make_unique<sim::GilbertElliott>(1e-4, 1e-2, 0.0, 0.1);
  } else {
    fwd = std::make_unique<sim::IidDrop>(1e-3);
  }
  auto bwd = std::make_unique<sim::IidDrop>(0.0);

  auto nic_a = std::make_unique<verbs::Nic>(sim, 1);
  auto nic_b = std::make_unique<verbs::Nic>(sim, 2);
  auto link = std::make_unique<sim::DuplexLink>(sim, cfg, std::move(fwd),
                                                std::move(bwd));
  link->forward().set_receiver(
      [nic = nic_b.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  link->backward().set_receiver(
      [nic = nic_a.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  nic_a->add_route(2, &link->forward());
  nic_b->add_route(1, &link->backward());

  reliability::ReliableChannel::Options options;
  options.kind = kind;
  options.profile.bandwidth_bps = cfg.bandwidth_bps;
  options.profile.rtt_s = rtt_s(cfg.distance_km);
  options.profile.p_drop_packet = 1e-3;
  options.profile.mtu = 4096;
  options.profile.chunk_bytes = 4096;
  options.attr.mtu = 4096;
  options.attr.chunk_size = 4096;
  options.attr.max_msg_size = 8 * MiB;
  // An 8 MiB EC message posts 64 data + 64 parity submessage receives.
  options.attr.max_inflight = 256;
  options.ec.k = 32;
  options.ec.m = 8;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nic_a, *nic_b, options);

  const std::size_t bytes = 8 * MiB;
  std::vector<std::uint8_t> src(bytes), dst(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  RunStats stats;
  int completed = 0;
  const int messages = 4;
  for (int m = 0; m < messages; ++m) {
    channel.recv(dst.data(), bytes, [&](const Status& s) {
      if (s.is_ok()) ++completed;
    });
    channel.send(src.data(), bytes, [](const Status&) {});
    sim.run();
  }
  stats.ok = completed == messages &&
             std::memcmp(dst.data(), src.data(), bytes) == 0;
  stats.completion_s = sim.now().seconds() / messages;
  stats.retransmissions = channel.retransmissions();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: burst vs i.i.d. loss",
                       "executable SR/EC over Gilbert-Elliott bursts vs "
                       "i.i.d. drops at ~1e-3 average loss (8 MiB writes)");

  TextTable t({"scheme", "loss process", "mean completion",
               "retransmissions", "delivered"});
  struct Case {
    const char* name;
    reliability::ReliableChannel::Kind kind;
  };
  const Case cases[] = {
      {"SR RTO", reliability::ReliableChannel::Kind::kSrRto},
      {"EC MDS(32,8)", reliability::ReliableChannel::Kind::kEcMds},
  };
  for (const Case& c : cases) {
    for (const bool bursty : {false, true}) {
      const RunStats s = run(c.kind, bursty, bursty ? 77 : 33);
      t.add_row({c.name, bursty ? "Gilbert-Elliott" : "i.i.d.",
                 format_seconds(s.completion_s),
                 std::to_string(s.retransmissions), s.ok ? "yes" : "NO"});
    }
  }
  t.print();
  std::printf("\nobservation: both schemes stay correct under bursts; "
              "bursty losses cluster into few chunks/submessages, shifting "
              "cost between SR retransmissions and EC fallbacks — the "
              "motivation for per-deployment tuning (§2.1).\n");
  return 0;
}
