// Ablation: burst (Gilbert-Elliott) vs i.i.d. loss at the same average
// drop rate. The paper's model assumes i.i.d. chunk drops (§4.2.1) and its
// bitmap chunking can "mask drop bursts within the same chunk" (§3.1.1).
// This ablation runs the EXECUTABLE protocols over both loss processes:
// bursts concentrate losses into few submessages, which helps SR (fewer
// affected RTOs than spread losses) but stresses EC codes whose per-
// submessage tolerance is exceeded by a burst.
//
// The four cases run on the sweep engine (`--jobs=N`): each trial builds a
// fully private simulator + telemetry stack, so this bench doubles as the
// TSan workout for parallel full-stack trials. Channel seeds stay the
// historical params-derived 77/33, keeping output identical to the serial
// version.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct RunStats {
  double completion_s{0.0};
  std::uint64_t retransmissions{0};
  bool ok{false};
};

RunStats run(sweep::Trial& trial, reliability::ReliableChannel::Kind kind,
             bool bursty, std::uint64_t seed) {
  sim::Simulator sim;
  trial.attach_sampler(sim);
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 1000.0;
  cfg.seed = seed;

  // Average loss ~1e-3 in both processes; the bursty channel spends ~1% of
  // packets in a bad state losing 10% of them.
  std::unique_ptr<sim::DropModel> fwd;
  if (bursty) {
    fwd = std::make_unique<sim::GilbertElliott>(1e-4, 1e-2, 0.0, 0.1);
  } else {
    fwd = std::make_unique<sim::IidDrop>(1e-3);
  }
  auto bwd = std::make_unique<sim::IidDrop>(0.0);

  auto nic_a = std::make_unique<verbs::Nic>(sim, 1);
  auto nic_b = std::make_unique<verbs::Nic>(sim, 2);
  auto link = std::make_unique<sim::DuplexLink>(sim, cfg, std::move(fwd),
                                                std::move(bwd));
  link->forward().set_receiver(
      [nic = nic_b.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  link->backward().set_receiver(
      [nic = nic_a.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
  nic_a->add_route(2, &link->forward());
  nic_b->add_route(1, &link->backward());

  reliability::ReliableChannel::Options options;
  options.kind = kind;
  options.profile.bandwidth_bps = cfg.bandwidth_bps;
  options.profile.rtt_s = rtt_s(cfg.distance_km);
  options.profile.p_drop_packet = 1e-3;
  options.profile.mtu = 4096;
  options.profile.chunk_bytes = 4096;
  options.attr.mtu = 4096;
  options.attr.chunk_size = 4096;
  options.attr.max_msg_size = 8 * MiB;
  // An 8 MiB EC message posts 64 data + 64 parity submessage receives.
  options.attr.max_inflight = 256;
  options.ec.k = 32;
  options.ec.m = 8;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nic_a, *nic_b, options);

  const std::size_t bytes = 8 * MiB;
  std::vector<std::uint8_t> src(bytes), dst(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  RunStats stats;
  int completed = 0;
  const int messages = 4;
  for (int m = 0; m < messages; ++m) {
    channel.recv(dst.data(), bytes, [&](const Status& s) {
      if (s.is_ok()) ++completed;
    });
    channel.send(src.data(), bytes, [](const Status&) {});
    sim.run();
  }
  stats.ok = completed == messages &&
             std::memcmp(dst.data(), src.data(), bytes) == 0;
  stats.completion_s = sim.now().seconds() / messages;
  stats.retransmissions = channel.retransmissions();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Ablation: burst vs i.i.d. loss",
                       "executable SR/EC over Gilbert-Elliott bursts vs "
                       "i.i.d. drops at ~1e-3 average loss (8 MiB writes)");

  sweep::ParamGrid grid;
  grid.axis_str("scheme", {"SR RTO", "EC MDS(32,8)"})
      .axis_flag("bursty", {false, true});

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xAB1A7105), [](sweep::Trial& trial) {
        const bool bursty = trial.params().flag("bursty");
        const auto kind = trial.params().str("scheme") == "SR RTO"
                              ? reliability::ReliableChannel::Kind::kSrRto
                              : reliability::ReliableChannel::Kind::kEcMds;
        const RunStats s = run(trial, kind, bursty, bursty ? 77 : 33);
        trial.record("completion_s", s.completion_s);
        trial.record("retransmissions",
                     static_cast<std::int64_t>(s.retransmissions));
        trial.record_flag("delivered", s.ok);
      });
  sweep_cli.finish(result);

  TextTable t({"scheme", "loss process", "mean completion",
               "retransmissions", "delivered"});
  for (const sweep::TrialRecord& rec : result.trials) {
    const sweep::ParamPoint point = grid.point(rec.index);
    const sweep::TrialRecord::Value* delivered = rec.find("delivered");
    t.add_row({point.str("scheme"),
               point.flag("bursty") ? "Gilbert-Elliott" : "i.i.d.",
               format_seconds(rec.f64("completion_s")),
               rec.find("retransmissions")
                   ? rec.find("retransmissions")->csv
                   : "?",
               delivered != nullptr && delivered->csv == "true" ? "yes"
                                                                : "NO"});
  }
  t.print();
  std::printf("\nobservation: both schemes stay correct under bursts; "
              "bursty losses cluster into few chunks/submessages, shifting "
              "cost between SR retransmissions and EC fallbacks — the "
              "motivation for per-deployment tuning (§2.1).\n");
  return result.failures() == 0 ? 0 : 1;
}
