// Ablation: message-ID generations (paper §3.3.2).
//
// The SDR late-packet protection is two-staged: NULL-key rebinds protect
// buffers between recv_complete and the next recv_post, and *generations*
// protect bitmaps once the slot is reused. This ablation disables the
// second stage (generations = 1) and shows the failure the paper designs
// against: a receive completed early leaves packets in flight; when its
// message-ID slot is reposted, those late packets complete the NEW
// message's bitmap prematurely (the receiver observes "complete" before
// the new data arrived). With generations >= 2 every late completion is
// discarded by the generation check.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct TrialResult {
  bool premature_completion{false};  // msg2 signaled complete w/ stale data
  std::uint64_t discarded{0};        // completions dropped by gen check
};

TrialResult run_trial(std::size_t generations, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Channel::Config link;
  link.bandwidth_bps = 100 * Gbps;
  link.distance_km = 1000.0;  // 5 ms one-way: plenty of in-flight time
  link.seed = seed;
  verbs::NicPair nics = verbs::make_connected_pair(sim, link, 0.0, 0.0);

  core::Context ctx_a(*nics.a, core::DevAttr{});
  core::Context ctx_b(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;
  attr.max_msg_size = 32 * 1024;  // 32 packets
  attr.max_inflight = 2;          // slot 0 reused at message number 2
  attr.generations = generations;
  core::Qp* tx = ctx_a.create_qp(attr);
  core::Qp* rx = ctx_b.create_qp(attr);
  tx->connect(rx->info());
  rx->connect(tx->info());

  const std::size_t len = 32 * 1024;
  std::vector<std::uint8_t> old_data(len, 0xAA);
  std::vector<std::uint8_t> new_data(len, 0x55);
  std::vector<std::uint8_t> buf_a(len), tiny(1024), buf_c(len, 0);
  const auto* mr_a = ctx_b.mr_reg(buf_a.data(), buf_a.size());
  const auto* mr_t = ctx_b.mr_reg(tiny.data(), tiny.size());
  const auto* mr_c = ctx_b.mr_reg(buf_c.data(), buf_c.size());

  TrialResult result;

  // Message 0: posted, sent... and completed early while in flight.
  core::RecvHandle* rh0 = nullptr;
  rx->recv_post(buf_a.data(), len, mr_a, &rh0);
  core::SendHandle* sh0 = nullptr;
  tx->send_post(old_data.data(), len, 0, false, &sh0);
  sim.run_until(SimTime::from_millis(6.0));  // CTS done, data mid-flight
  rx->recv_complete(rh0);

  // Message 1 (slot 1, keeps order) and message 2 (slot 0 REUSED).
  core::RecvHandle *rh1 = nullptr, *rh2 = nullptr;
  rx->recv_post(tiny.data(), tiny.size(), mr_t, &rh1);
  rx->recv_post(buf_c.data(), len, mr_c, &rh2);
  rx->set_recv_event_handler([&](const core::RecvEvent& ev) {
    if (ev.type == core::RecvEvent::Type::kMessageCompleted &&
        ev.handle == rh2) {
      // The moment the bitmap claims completion, is the data really there?
      if (std::memcmp(buf_c.data(), new_data.data(), len) != 0) {
        result.premature_completion = true;
      }
    }
  });
  core::SendHandle *sh1 = nullptr, *sh2 = nullptr;
  tx->send_post(tiny.data(), tiny.size(), 0, false, &sh1);
  tx->send_post(new_data.data(), len, 0, false, &sh2);
  sim.run();

  result.discarded = rx->stats().completions_discarded;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: generations (§3.3.2)",
                       "early receive completion + slot reuse with "
                       "in-flight packets, 20 trials per configuration");

  TextTable t({"generations", "premature completions", "late completions "
               "discarded (avg)", "bitmap protected"});
  bool protection_demonstrated = false;
  for (const std::size_t generations : {1u, 2u, 4u}) {
    int premature = 0;
    std::uint64_t discarded = 0;
    const int trials = 20;
    for (int i = 0; i < trials; ++i) {
      const TrialResult r =
          run_trial(generations, 1000 + generations * 100 + i);
      premature += r.premature_completion ? 1 : 0;
      discarded += r.discarded;
    }
    const bool protectd = premature == 0;
    if (generations == 1 && premature > 0) protection_demonstrated = true;
    if (generations > 1 && premature == 0 && protection_demonstrated) {
      // both halves of the story observed
    }
    t.add_row({std::to_string(generations),
               std::to_string(premature) + "/" + std::to_string(trials),
               TextTable::num(static_cast<double>(discarded) / trials, 3),
               protectd ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nwith a single generation the reused slot's bitmap is "
              "corrupted by late packets (premature completion with stale "
              "data); >= 2 generations discard every late completion — the "
              "paper's stage-2 protection.\n");
  return 0;
}
