// Ablation: transport-immediate bit split (paper §3.2.4).
//
// The 32-bit immediate is split into message-ID / packet-offset / user-imm
// fields. The default 10+18+4 supports 1024 in-flight messages of up to
// 1 GiB (4 KiB MTU); the alternative 8+22+2 trades in-flight descriptors
// for 16 GiB messages. The split must not affect the per-CQE cost (the
// decode is pure bit arithmetic) — verified by calibration.
#include <cstdio>

#include "bench_util.hpp"
#include "dpa/calibrate.hpp"
#include "sdr/imm_codec.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: immediate bit split (§3.2.4)",
                       "capability and measured cost per split");

  struct Case {
    const char* name;
    core::ImmLayout layout;
  };
  const Case cases[] = {
      {"10+18+4 (default)", core::kDefaultImmLayout},
      {"8+22+2 (large msgs)", core::kLargeMessageImmLayout},
      {"12+16+4", core::ImmLayout{12, 16, 4}},
  };

  TextTable t({"split", "in-flight msgs", "max msg @4 KiB MTU",
               "user-imm fragments", "per-CQE ns"});
  double min_cost = 1e30, max_cost = 0.0;
  for (const Case& c : cases) {
    core::QpAttr attr;
    attr.mtu = 4096;
    attr.chunk_size = 64 * KiB;
    attr.max_msg_size = 16 * MiB;
    attr.max_inflight = std::min<std::size_t>(256, c.layout.max_messages());
    attr.imm = c.layout;
    const dpa::Calibration cal = dpa::calibrate(attr, 1u << 19);
    min_cost = std::min(min_cost, cal.ns_per_cqe);
    max_cost = std::max(max_cost, cal.ns_per_cqe);
    t.add_row({c.name, std::to_string(c.layout.max_messages()),
               format_bytes(c.layout.max_packets() * 4096),
               std::to_string(c.layout.user_fragments()),
               TextTable::num(cal.ns_per_cqe, 3)});
  }
  t.print();
  std::printf("\nshape check: decode cost independent of the split "
              "(max/min = %.2f) — choosing a split is purely a capability "
              "trade-off.\n",
              max_cost / min_cost);
  return 0;
}
