// Figure 11: MDS (Reed-Solomon) vs XOR erasure-code encode cost and
// resilience. Paper setup: 128 MiB buffer, 64 KiB chunks, k=32, m=8 on a
// Xeon Platinum. Findings to reproduce:
//   * XOR encodes ~2x faster than MDS (hides behind 400 Gbit/s with half
//     the cores);
//   * XOR trades that efficiency for resilience: it falls back to SR around
//     1e-3 drop rate while MDS holds beyond 1e-2.
// Encode throughput is MEASURED on this host with google-benchmark; the
// required-cores figure extrapolates per-core throughput to the paper's
// 400 Gbit/s line rate. The resilience panel evaluates the Appendix B
// probabilities for the Fig 11 buffer (64 submessages of 2 MiB).
//
// The MDS panel additionally runs one lane per compiled GF(256) kernel ISA
// (scalar | ssse3 | avx2 | gfni — see ec/gf256_kernels.hpp) so the split-
// table speedup is recorded, not just the dispatched best. Headline lines:
//   BENCH_JSON {"bench":"fig11","workload":"mds_encode","isa":...,
//               "gbps":...,"cores_400g":...,"allocs_per_encode":...,
//               "commit":...}
//   BENCH_JSON {"bench":"fig11","workload":"xor_encode",...}
// Unsupported ISAs are skipped with an explicit line, never silently.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.hpp"
#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "ec/gf256_kernels.hpp"
#include "ec/probability.hpp"
#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"
#include "sdr/version.hpp"

using namespace sdr;  // NOLINT

// ---------------------------------------------------------------------------
// Global allocation counter (same hook as bench_fleet / bench_datapath) —
// proves the fused encode path is allocation-free per call.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

constexpr std::size_t kChunk = 64 * KiB;
constexpr std::size_t kK = 32;
constexpr std::size_t kM = 8;
constexpr std::size_t kBuffer = 128 * MiB;
constexpr std::size_t kSubmessages = kBuffer / (kK * kChunk);  // 64

struct EncodeFixture {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> parity;
  std::vector<const std::uint8_t*> data_ptrs;
  std::vector<std::uint8_t*> parity_ptrs;

  EncodeFixture() {
    data.resize(kK * kChunk);
    parity.resize(kM * kChunk);
    Rng rng(11);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    for (std::size_t i = 0; i < kK; ++i) {
      data_ptrs.push_back(data.data() + i * kChunk);
    }
    for (std::size_t i = 0; i < kM; ++i) {
      parity_ptrs.push_back(parity.data() + i * kChunk);
    }
  }
};

template <typename Codec>
void encode_benchmark(benchmark::State& state) {
  static EncodeFixture fixture;
  Codec codec(kK, kM);
  for (auto _ : state) {
    codec.encode(std::span<const std::uint8_t* const>(fixture.data_ptrs),
                 std::span<std::uint8_t* const>(fixture.parity_ptrs), kChunk);
    benchmark::DoNotOptimize(fixture.parity.data());
  }
  // Bytes of application data protected per encode call (one submessage).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kChunk));
}

void BM_MdsEncode(benchmark::State& state) {
  encode_benchmark<ec::ReedSolomon>(state);
}
void BM_XorEncode(benchmark::State& state) {
  encode_benchmark<ec::XorCode>(state);
}
BENCHMARK(BM_MdsEncode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_XorEncode)->Unit(benchmark::kMicrosecond);

struct Measurement {
  double gbps{0.0};
  double allocs_per_encode{0.0};
};

/// Times `reps` encode calls of one 2 MiB submessage via `encode` and
/// reports application-data throughput plus heap allocations per call.
template <typename EncodeFn>
Measurement measure(EncodeFn&& encode, int reps = 24) {
  encode();  // warm-up: tables, page faults
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) encode();
  const auto end = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  const double seconds = std::chrono::duration<double>(end - begin).count();
  Measurement m;
  m.gbps = static_cast<double>(reps) * (kK * kChunk) * 8.0 / seconds / 1e9;
  m.allocs_per_encode =
      static_cast<double>(allocs_after - allocs_before) / reps;
  return m;
}

double cores_to_hide_400g(double gbps) { return std::ceil(400.0 / gbps); }

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 11",
                       "MDS vs XOR EC(32,8): encode cost (measured on this "
                       "host) and resilience (128 MiB buffer, 64 KiB "
                       "chunks)");

  EncodeFixture fixture;
  const ec::ReedSolomon rs(kK, kM);
  const ec::XorCode xr(kK, kM);
  const auto data = std::span<const std::uint8_t* const>(fixture.data_ptrs);
  const auto parity = std::span<std::uint8_t* const>(fixture.parity_ptrs);

  // Per-ISA MDS lanes: the same fused encode pass under each compiled
  // kernel tier. Skips are explicit so a CI log never hides a missing lane.
  std::printf("host CPU: %s — dispatched gf256 ISA: %s\n\n",
              common::cpu_feature_summary().c_str(),
              ec::isa_name(ec::active_isa()));
  double scalar_gbps = 0.0, best_gbps = 0.0;
  const char* best_isa = "scalar";
  {
    TextTable t({"MDS kernel ISA", "encode throughput",
                 "cores to hide 400 Gbit/s", "vs scalar"});
    for (ec::GfIsa isa : {ec::GfIsa::kScalar, ec::GfIsa::kSsse3,
                          ec::GfIsa::kAvx2, ec::GfIsa::kGfni}) {
      const ec::GfKernels* kernels = ec::gf_kernels_for(isa);
      if (kernels == nullptr || !ec::isa_supported(isa)) {
        std::printf("skipping %s: unsupported on this host/binary\n",
                    ec::isa_name(isa));
        continue;
      }
      const Measurement m = measure(
          [&] { rs.encode_with(*kernels, data, parity, kChunk); });
      if (isa == ec::GfIsa::kScalar) scalar_gbps = m.gbps;
      if (m.gbps > best_gbps) {
        best_gbps = m.gbps;
        best_isa = ec::isa_name(isa);
      }
      t.add_row({ec::isa_name(isa), format_rate(m.gbps * 1e9),
                 TextTable::num(cores_to_hide_400g(m.gbps), 2),
                 scalar_gbps > 0.0
                     ? bench::speedup_cell(m.gbps / scalar_gbps)
                     : "1.00x"});
      std::printf(
          "BENCH_JSON {\"bench\":\"fig11\",\"workload\":\"mds_encode\","
          "\"isa\":\"%s\",\"k\":%zu,\"m\":%zu,\"chunk_bytes\":%zu,"
          "\"gbps\":%.6f,\"cores_400g\":%.0f,\"allocs_per_encode\":%.3f,"
          "\"commit\":\"%s\"}\n",
          ec::isa_name(isa), kK, kM, kChunk, m.gbps,
          cores_to_hide_400g(m.gbps), m.allocs_per_encode, kGitCommit);
    }
    t.print();
    if (scalar_gbps > 0.0 && best_gbps > scalar_gbps) {
      std::printf("best vector ISA (%s) is %.2fx the scalar kernels\n\n",
                  best_isa, best_gbps / scalar_gbps);
    } else {
      std::printf("no vector ISA available — scalar kernels only\n\n");
    }
  }

  // Headline MDS-vs-XOR comparison under the *dispatched* kernels (what the
  // protocol actually runs).
  const Measurement mds = measure([&] { rs.encode(data, parity, kChunk); });
  const Measurement xr_m = measure([&] { xr.encode(data, parity, kChunk); });
  const double mds_gbps = mds.gbps;
  const double xor_gbps = xr_m.gbps;
  {
    TextTable t({"code", "encode throughput", "cores to hide 400 Gbit/s",
                 "relative speed"});
    auto cores = [](double gbps) {
      return TextTable::num(cores_to_hide_400g(gbps), 2);
    };
    t.add_row({"MDS RS(32,8)", format_rate(mds_gbps * 1e9) ,
               cores(mds_gbps), "1.00x"});
    t.add_row({"XOR(32,8)", format_rate(xor_gbps * 1e9), cores(xor_gbps),
               bench::speedup_cell(xor_gbps / mds_gbps)});
    t.print();
    std::printf("paper shape: XOR needs about half the cores of MDS to hide "
                "encoding at line rate — measured ratio %.2fx\n",
                xor_gbps / mds_gbps);
    std::printf(
        "BENCH_JSON {\"bench\":\"fig11\",\"workload\":\"xor_encode\","
        "\"isa\":\"compiler\",\"k\":%zu,\"m\":%zu,\"chunk_bytes\":%zu,"
        "\"gbps\":%.6f,\"cores_400g\":%.0f,\"allocs_per_encode\":%.3f,"
        "\"commit\":\"%s\"}\n\n",
        kK, kM, kChunk, xor_gbps, cores_to_hide_400g(xor_gbps),
        xr_m.allocs_per_encode, kGitCommit);
  }

  // Resilience: fallback probability for the whole 128 MiB buffer
  // (64 submessages) vs PACKET drop rate. One 64 KiB chunk spans 16
  // packets at 4 KiB MTU, so the chunk-level drop the codes see is
  // 1-(1-p)^16 (Fig 15 amplification).
  {
    constexpr std::size_t kPacketsPerChunk = 16;
    TextTable t({"packet Pdrop", "chunk Pdrop", "P(submsg fail) MDS",
                 "P(submsg fail) XOR", "P(buffer fallback) MDS",
                 "P(buffer fallback) XOR"});
    double xor_threshold = 0.0, mds_threshold = 0.0;
    for (double p = 1e-5; p <= 0.033; p *= std::sqrt(10.0)) {
      const double chunk_p = ec::chunk_drop_probability(p, kPacketsPerChunk);
      const double mds_ok = ec::p_ec_mds(kK, kM, chunk_p);
      const double xor_ok = ec::p_ec_xor(kK, kM, chunk_p);
      const double mds_fb =
          1.0 - std::pow(mds_ok, static_cast<double>(kSubmessages));
      const double xor_fb =
          1.0 - std::pow(xor_ok, static_cast<double>(kSubmessages));
      t.add_row({TextTable::sci(p, 1), TextTable::sci(chunk_p, 1),
                 TextTable::sci(1.0 - mds_ok, 2),
                 TextTable::sci(1.0 - xor_ok, 2), TextTable::sci(mds_fb, 2),
                 TextTable::sci(xor_fb, 2)});
      if (xor_fb > 0.5 && xor_threshold == 0.0) xor_threshold = p;
      if (mds_fb > 0.5 && mds_threshold == 0.0) mds_threshold = p;
    }
    t.print();
    std::printf("\nbuffer fallback thresholds (P > 50%%, packet units): "
                "XOR at ~%.1e, MDS at ~%.1e — paper: XOR ~1e-3, MDS an "
                "order of magnitude later (robust toward 1e-2)\n\n",
                xor_threshold, mds_threshold);
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
