// Figure 11: MDS (Reed-Solomon) vs XOR erasure-code encode cost and
// resilience. Paper setup: 128 MiB buffer, 64 KiB chunks, k=32, m=8 on a
// Xeon Platinum. Findings to reproduce:
//   * XOR encodes ~2x faster than MDS (hides behind 400 Gbit/s with half
//     the cores);
//   * XOR trades that efficiency for resilience: it falls back to SR around
//     1e-3 drop rate while MDS holds beyond 1e-2.
// Encode throughput is MEASURED on this host with google-benchmark; the
// required-cores figure extrapolates per-core throughput to the paper's
// 400 Gbit/s line rate. The resilience panel evaluates the Appendix B
// probabilities for the Fig 11 buffer (64 submessages of 2 MiB).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ec/probability.hpp"
#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"

using namespace sdr;  // NOLINT

namespace {

constexpr std::size_t kChunk = 64 * KiB;
constexpr std::size_t kK = 32;
constexpr std::size_t kM = 8;
constexpr std::size_t kBuffer = 128 * MiB;
constexpr std::size_t kSubmessages = kBuffer / (kK * kChunk);  // 64

struct EncodeFixture {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> parity;
  std::vector<const std::uint8_t*> data_ptrs;
  std::vector<std::uint8_t*> parity_ptrs;

  EncodeFixture() {
    data.resize(kK * kChunk);
    parity.resize(kM * kChunk);
    Rng rng(11);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    for (std::size_t i = 0; i < kK; ++i) {
      data_ptrs.push_back(data.data() + i * kChunk);
    }
    for (std::size_t i = 0; i < kM; ++i) {
      parity_ptrs.push_back(parity.data() + i * kChunk);
    }
  }
};

template <typename Codec>
void encode_benchmark(benchmark::State& state) {
  static EncodeFixture fixture;
  Codec codec(kK, kM);
  for (auto _ : state) {
    codec.encode(std::span<const std::uint8_t* const>(fixture.data_ptrs),
                 std::span<std::uint8_t* const>(fixture.parity_ptrs), kChunk);
    benchmark::DoNotOptimize(fixture.parity.data());
  }
  // Bytes of application data protected per encode call (one submessage).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kChunk));
}

void BM_MdsEncode(benchmark::State& state) {
  encode_benchmark<ec::ReedSolomon>(state);
}
void BM_XorEncode(benchmark::State& state) {
  encode_benchmark<ec::XorCode>(state);
}
BENCHMARK(BM_MdsEncode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_XorEncode)->Unit(benchmark::kMicrosecond);

template <typename Codec>
double measure_gbps() {
  EncodeFixture fixture;
  Codec codec(kK, kM);
  // Warm up + measure enough encodes of one 2 MiB submessage.
  const int reps = 24;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    codec.encode(std::span<const std::uint8_t* const>(fixture.data_ptrs),
                 std::span<std::uint8_t* const>(fixture.parity_ptrs), kChunk);
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - begin).count();
  return static_cast<double>(reps) * (kK * kChunk) * 8.0 / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Figure 11",
                       "MDS vs XOR EC(32,8): encode cost (measured on this "
                       "host) and resilience (128 MiB buffer, 64 KiB "
                       "chunks)");

  const double mds_gbps = measure_gbps<ec::ReedSolomon>();
  const double xor_gbps = measure_gbps<ec::XorCode>();
  {
    TextTable t({"code", "encode throughput", "cores to hide 400 Gbit/s",
                 "relative speed"});
    auto cores = [](double gbps) {
      return TextTable::num(std::ceil(400.0 / gbps), 2);
    };
    t.add_row({"MDS RS(32,8)", format_rate(mds_gbps * 1e9) ,
               cores(mds_gbps), "1.00x"});
    t.add_row({"XOR(32,8)", format_rate(xor_gbps * 1e9), cores(xor_gbps),
               bench::speedup_cell(xor_gbps / mds_gbps)});
    t.print();
    std::printf("paper shape: XOR needs about half the cores of MDS to hide "
                "encoding at line rate — measured ratio %.2fx\n\n",
                xor_gbps / mds_gbps);
  }

  // Resilience: fallback probability for the whole 128 MiB buffer
  // (64 submessages) vs PACKET drop rate. One 64 KiB chunk spans 16
  // packets at 4 KiB MTU, so the chunk-level drop the codes see is
  // 1-(1-p)^16 (Fig 15 amplification).
  {
    constexpr std::size_t kPacketsPerChunk = 16;
    TextTable t({"packet Pdrop", "chunk Pdrop", "P(submsg fail) MDS",
                 "P(submsg fail) XOR", "P(buffer fallback) MDS",
                 "P(buffer fallback) XOR"});
    double xor_threshold = 0.0, mds_threshold = 0.0;
    for (double p = 1e-5; p <= 0.033; p *= std::sqrt(10.0)) {
      const double chunk_p = ec::chunk_drop_probability(p, kPacketsPerChunk);
      const double mds_ok = ec::p_ec_mds(kK, kM, chunk_p);
      const double xor_ok = ec::p_ec_xor(kK, kM, chunk_p);
      const double mds_fb =
          1.0 - std::pow(mds_ok, static_cast<double>(kSubmessages));
      const double xor_fb =
          1.0 - std::pow(xor_ok, static_cast<double>(kSubmessages));
      t.add_row({TextTable::sci(p, 1), TextTable::sci(chunk_p, 1),
                 TextTable::sci(1.0 - mds_ok, 2),
                 TextTable::sci(1.0 - xor_ok, 2), TextTable::sci(mds_fb, 2),
                 TextTable::sci(xor_fb, 2)});
      if (xor_fb > 0.5 && xor_threshold == 0.0) xor_threshold = p;
      if (mds_fb > 0.5 && mds_threshold == 0.0) mds_threshold = p;
    }
    t.print();
    std::printf("\nbuffer fallback thresholds (P > 50%%, packet units): "
                "XOR at ~%.1e, MDS at ~%.1e — paper: XOR ~1e-3, MDS an "
                "order of magnitude later (robust toward 1e-2)\n\n",
                xor_threshold, mds_threshold);
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
