// Figure 2: packet drop rate variability between two datacenter sites.
//
// The paper measures UDP drop rates with iperf3 between Lugano and Lausanne
// (350 km, 100 Gbit/s, public-ISP optical path): up to three orders of
// magnitude variation across trials at fixed payload size, and drop rates
// increasing with payload (ISP switch-buffer congestion). We regenerate the
// measurement on the congestion-modulated channel model: 16 flows, payload
// sizes 1-8 KiB, 200 trials of (scaled-down) duration each.
//
// The payload x trial grid runs on the sweep engine (`--jobs=N`); the
// percentile tables are assembled from the records in grid order, so output
// is bit-identical at every job count.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header(
      "Figure 2", "UDP drop rate vs payload size across 200 trials "
      "(16 flows, 100 Gbit/s, 350 km, congestion-modulated ISP path)",
      2026);

  constexpr int kTrials = 200;
  constexpr int kFlows = 16;
  constexpr int kPacketsPerFlowPerTrial = 2000;

  const std::vector<std::int64_t> payloads = {1024, 2048, 4096, 8192};
  std::vector<std::int64_t> trial_ids(kTrials);
  for (int i = 0; i < kTrials; ++i) trial_ids[i] = i;

  // Last axis (trial) varies fastest: cell order == the old nested loops.
  sweep::ParamGrid grid;
  grid.axis_i64("payload", payloads).axis_i64("trial", trial_ids);

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xF16002), [](sweep::Trial& t) {
        const auto payload =
            static_cast<std::size_t>(t.params().i64("payload"));
        const auto trial_no =
            static_cast<std::uint64_t>(t.params().i64("trial"));
        sim::Simulator sim;
        t.attach_sampler(sim);
        sim::Channel::Config cfg;
        cfg.bandwidth_bps = 100 * Gbps;
        cfg.distance_km = 350.0;
        // Seed derives from (trial, payload) only — the formula of the old
        // serial loops, never a function of which worker runs the cell.
        cfg.seed = 2026 + trial_no * 977 + payload;
        sim::Channel channel(
            sim, cfg,
            std::make_unique<sim::CongestionDrop>(
                sim::CongestionDrop::Params{}));
        channel.set_receiver([](sim::Packet&&) {});
        channel.new_trial();  // redraw the trial's congestion intensity
        for (int flow = 0; flow < kFlows; ++flow) {
          for (int p = 0; p < kPacketsPerFlowPerTrial; ++p) {
            sim::Packet pkt;
            pkt.bytes = payload;
            channel.send(std::move(pkt));
          }
        }
        sim.run();
        t.record("drop_rate", std::max(channel.stats().drop_rate(), 1e-7));
      });
  sweep_cli.finish(result);

  TextTable table({"payload", "min", "p25", "median", "p75", "max",
                   "decades of spread"});
  std::vector<double> medians;
  std::size_t trial_index = 0;
  for (const std::int64_t payload : payloads) {
    std::vector<double> trial_rates;
    trial_rates.reserve(kTrials);
    for (int trial = 0; trial < kTrials; ++trial) {
      trial_rates.push_back(result.at(trial_index++).f64("drop_rate"));
    }
    std::sort(trial_rates.begin(), trial_rates.end());
    auto pct = [&](double q) {
      return trial_rates[static_cast<std::size_t>(q * (kTrials - 1))];
    };
    const double spread = std::log10(pct(1.0) / pct(0.0));
    table.add_row({format_bytes(static_cast<std::uint64_t>(payload)),
                   TextTable::sci(pct(0.0)), TextTable::sci(pct(0.25)),
                   TextTable::sci(pct(0.5)), TextTable::sci(pct(0.75)),
                   TextTable::sci(pct(1.0)), TextTable::num(spread, 2)});
    medians.push_back(pct(0.5));
  }
  table.print();
  std::printf(
      "\npaper shape check: drop rates rise with payload size (%s) and span\n"
      ">= 2 decades across trials at fixed size — both reproduced above.\n",
      medians.back() > medians.front() ? "yes" : "NO");
  return (medians.back() > medians.front() && result.failures() == 0) ? 0 : 1;
}
