// End-to-end data-path benchmark: packets per wall-clock second through the
// full simulated wire, from post to bitmap update / completion. Where
// bench_simcore probes the event core in isolation, this is the composed
// path every figure sweep actually pays for: verbs packetization, channel
// serialization, per-packet CQEs, SDR matching and bitmap coalescing, and
// (for the lossy workloads) the RC retransmit queue and the SR reliability
// protocol on top.
//
// Three workloads:
//   * sdr_clean    — pipelined SDR messages (CTS + one UC Write-with-imm
//                    per MTU packet) over a clean 400 Gbit/s link. The
//                    zero-allocation steady-state target lives here.
//   * rc_lossy     — verbs RC Writes with Go-Back-N over a 1e-3 lossy
//                    link; exercises the unacked retransmit queue.
//   * sdr_lossy_sr — a ReliableChannel (SR RTO scheme) carrying messages
//                    over a 1e-3 lossy link: the paper's full software-
//                    defined reliability stack end to end.
//
// Each workload emits one machine-readable line:
//
//   BENCH_JSON {"bench":"datapath","workload":...,"packets":...,
//               "wall_s":...,"packets_per_sec":...,"allocs_per_packet":...}
//
// Append these (with the commit id) to bench/trajectory.jsonl when a PR
// touches the packet path. Scale run length with argv[1] (default 1.0;
// CI smoke uses 0.05).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "sdr/version.hpp"
#include "reliability/reliable_channel.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same hook as bench_simcore): every operator-new
// in the process bumps it; workloads snapshot it around steady state.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sdr {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  std::uint64_t packets{0};
  double wall_s{0.0};
  double allocs_per_packet{0.0};
};

void report(const char* workload, const Measured& m) {
  std::printf("%-12s %.3e packets/s  (%llu packets, %.3f s, "
              "%.4f allocs/packet)\n",
              workload, static_cast<double>(m.packets) / m.wall_s,
              static_cast<unsigned long long>(m.packets), m.wall_s,
              m.allocs_per_packet);
  std::printf("BENCH_JSON {\"bench\":\"datapath\",\"workload\":\"%s\","
              "\"packets\":%llu,\"wall_s\":%.6f,\"packets_per_sec\":%.6e,"
              "\"allocs_per_packet\":%.6f,\"commit\":\"%s\"}\n",
              workload, static_cast<unsigned long long>(m.packets), m.wall_s,
              static_cast<double>(m.packets) / m.wall_s,
              m.allocs_per_packet, kGitCommit);
}

// ---------------------------------------------------------------------------
// Workload 1: pipelined SDR messages over a clean link. CTS round trip,
// one unreliable Write-with-immediate per MTU packet, per-packet data CQEs,
// bitmap set + chunk coalescing, completion, repost. Warmup messages let
// slot tables, CQ rings and the payload pool reach capacity; the remainder
// is the measured steady state.
// ---------------------------------------------------------------------------
Measured run_sdr_clean(int iterations, int warmup, int inflight,
                       std::size_t msg_bytes) {
  if (telemetry::spanning()) telemetry::spans().track("sdr_clean");
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 0.1;
  cfg.seed = 11;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);

  core::Context client(*nics.a, core::DevAttr{});
  core::Context server(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = std::max<std::size_t>(msg_bytes, attr.chunk_size);
  attr.max_inflight = static_cast<std::size_t>(inflight) * 2;
  core::Qp* cq = client.create_qp(attr);
  core::Qp* sq = server.create_qp(attr);
  cq->connect(sq->info());
  sq->connect(cq->info());

  std::vector<std::uint8_t> src(msg_bytes, 0xA5);
  std::vector<std::uint8_t> dst(
      static_cast<std::size_t>(inflight) * attr.max_msg_size, 0);
  const auto* mr = server.mr_reg(dst.data(), dst.size());

  const std::uint64_t pkts_per_msg = msg_bytes / attr.mtu;
  std::uint64_t allocs_at_steady = 0;
  double t_steady = 0.0;
  int posted = 0;
  int completed = 0;

  std::function<void(int)> post_recv = [&](int window_slot) {
    if (posted >= iterations) return;
    ++posted;
    core::RecvHandle* rh = nullptr;
    sq->recv_post(dst.data() + window_slot * attr.max_msg_size, msg_bytes,
                  mr, &rh);
  };
  sq->set_recv_event_handler([&](const core::RecvEvent& ev) {
    if (ev.type != core::RecvEvent::Type::kMessageCompleted) return;
    ++completed;
    if (completed == warmup) {  // steady state begins here
      allocs_at_steady = g_allocs.load();
      t_steady = now_s();
    }
    const int window_slot = static_cast<int>(
        ev.handle->slot() % static_cast<std::size_t>(inflight));
    sq->recv_complete(ev.handle);
    post_recv(window_slot);
  });

  std::vector<core::SendHandle*> handles;
  int sent = 0;
  std::function<void()> pump = [&] {
    for (auto it = handles.begin(); it != handles.end();) {
      if (cq->send_poll(*it).is_ok()) {
        it = handles.erase(it);
      } else {
        ++it;
      }
    }
    while (sent < iterations &&
           handles.size() < static_cast<std::size_t>(inflight)) {
      core::SendHandle* sh = nullptr;
      if (!cq->send_post(src.data(), msg_bytes, 0, false, &sh)) break;
      handles.push_back(sh);
      ++sent;
    }
    if (completed < iterations) {
      // Reschedule through a one-pointer capture: copying the fat
      // std::function itself would allocate on every poll tick.
      sim.schedule(SimTime::from_micros(1), [&pump] { pump(); });
    }
  };

  for (int w = 0; w < inflight && posted < iterations; ++w) post_recv(w);
  pump();
  sim.run();
  const double wall = now_s() - t_steady;
  const std::uint64_t allocs = g_allocs.load() - allocs_at_steady;

  if (completed != iterations) {
    std::fprintf(stderr, "sdr_clean: only %d/%d messages completed\n",
                 completed, iterations);
    std::exit(1);
  }
  Measured m;
  m.packets = pkts_per_msg * static_cast<std::uint64_t>(iterations - warmup);
  m.wall_s = wall;
  m.allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(m.packets);
  return m;
}

// ---------------------------------------------------------------------------
// Workload 2: verbs RC Writes (Go-Back-N) over a lossy link. Every packet
// sits in the unacked retransmit queue until its ACK; drops trigger NAK
// rewind and timeout retransmission — the commodity-NIC baseline path.
// ---------------------------------------------------------------------------
Measured run_rc_lossy(int iterations, int warmup, std::size_t msg_bytes) {
  if (telemetry::spanning()) telemetry::spans().track("rc_lossy");
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 1.0;
  cfg.seed = 23;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 1e-3, 0.0);

  verbs::CompletionQueue tx_cq(1 << 16), rx_cq(1 << 16);
  tx_cq.reserve(64);  // keep first-touch ring growth out of steady state
  rx_cq.reserve(64);
  verbs::QpConfig qcfg;
  qcfg.type = verbs::QpType::kRC;
  qcfg.mtu = 4096;
  qcfg.rc_ack_timeout_s = 0.001;
  verbs::QpConfig tx_cfg = qcfg;
  tx_cfg.send_cq = &tx_cq;
  verbs::Qp* tx = nics.a->create_qp(tx_cfg);
  verbs::QpConfig rx_cfg = qcfg;
  rx_cfg.recv_cq = &rx_cq;
  verbs::Qp* rx = nics.b->create_qp(rx_cfg);
  tx->connect(nics.b->id(), rx->num());
  rx->connect(nics.a->id(), tx->num());

  std::vector<std::uint8_t> src(msg_bytes, 0x5A);
  std::vector<std::uint8_t> dst(msg_bytes, 0);
  const verbs::MemoryRegion* mr =
      nics.b->pd().register_mr(dst.data(), dst.size());

  const std::uint64_t pkts_per_msg = msg_bytes / qcfg.mtu;
  std::uint64_t allocs_at_steady = 0;
  double t_steady = 0.0;
  int completed = 0;
  int posted = 0;

  std::function<void()> post_next = [&] {
    if (posted >= iterations) return;
    ++posted;
    verbs::WriteWr wr;
    wr.wr_id = static_cast<std::uint64_t>(posted);
    wr.local_addr = src.data();
    wr.length = src.size();
    wr.rkey = mr->rkey();
    wr.remote_offset = 0;
    wr.signaled = true;
    tx->post_write(wr);
  };
  tx_cq.set_notify([&] {
    while (tx_cq.poll_one()) {
      ++completed;
      if (completed == warmup) {
        allocs_at_steady = g_allocs.load();
        t_steady = now_s();
      }
      post_next();
    }
  });

  post_next();
  sim.run();
  const double wall = now_s() - t_steady;
  const std::uint64_t allocs = g_allocs.load() - allocs_at_steady;

  if (completed != iterations) {
    std::fprintf(stderr, "rc_lossy: only %d/%d writes completed\n", completed,
                 iterations);
    std::exit(1);
  }
  Measured m;
  m.packets = (pkts_per_msg * static_cast<std::uint64_t>(iterations - warmup)) +
              tx->stats().rc_retransmissions;
  m.wall_s = wall;
  m.allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(m.packets);
  return m;
}

// ---------------------------------------------------------------------------
// Workload 3: the full software-defined reliability stack — a
// ReliableChannel (SR RTO) carrying pipelined messages over a 1e-3 lossy
// link. Allocations per packet here include the SR sender/receiver message
// state, ACK wire messages and retransmission timers; the figure is
// reported honestly rather than forced to zero.
// ---------------------------------------------------------------------------
Measured run_sdr_lossy_sr(int iterations, int warmup, std::size_t msg_bytes) {
  if (telemetry::spanning()) telemetry::spans().track("sdr_lossy_sr");
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 100.0;
  cfg.seed = 37;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 1e-3, 0.0);

  reliability::ReliableChannel::Options options;
  options.kind = reliability::ReliableChannel::Kind::kSrRto;
  options.profile.bandwidth_bps = cfg.bandwidth_bps;
  options.profile.rtt_s = rtt_s(cfg.distance_km);
  options.profile.p_drop_packet = 1e-3;
  options.profile.mtu = 4096;
  options.profile.chunk_bytes = 64 * KiB;
  options.attr.mtu = 4096;
  options.attr.chunk_size = 64 * KiB;
  options.attr.max_msg_size = std::max<std::size_t>(msg_bytes, 64 * KiB);
  options.attr.max_inflight = 32;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nics.a, *nics.b, options);

  std::vector<std::uint8_t> src(msg_bytes, 0xC3);
  std::vector<std::uint8_t> dst(msg_bytes, 0);

  const std::uint64_t pkts_per_msg = msg_bytes / options.attr.mtu;

  // The driver state lives in one struct so the per-message completion
  // closure captures a single pointer: it stays inside std::function's
  // small-object buffer and the measured loop allocates nothing itself.
  struct Driver {
    reliability::ReliableChannel& channel;
    std::uint8_t* src;
    std::uint8_t* dst;
    std::size_t msg_bytes;
    int iterations;
    int warmup;
    int posted{0};
    int completed{0};
    std::uint64_t allocs_at_steady{0};
    double t_steady{0.0};

    void post_pair() {
      if (posted >= iterations) return;
      ++posted;
      channel.recv(dst, msg_bytes, [this](const Status&) { on_recv_done(); });
      channel.send(src, msg_bytes, [](const Status&) {});
    }
    void on_recv_done() {
      ++completed;
      if (completed == warmup) {
        allocs_at_steady = g_allocs.load();
        t_steady = now_s();
      }
      post_pair();
    }
  } driver{channel, src.data(), dst.data(), msg_bytes, iterations, warmup};

  driver.post_pair();
  sim.run();
  const double wall = now_s() - driver.t_steady;
  const std::uint64_t allocs = g_allocs.load() - driver.allocs_at_steady;

  if (driver.completed != iterations) {
    std::fprintf(stderr, "sdr_lossy_sr: only %d/%d messages completed\n",
                 driver.completed, iterations);
    std::exit(1);
  }
  Measured m;
  m.packets = (pkts_per_msg * static_cast<std::uint64_t>(iterations - warmup)) +
              channel.retransmissions();
  m.wall_s = wall;
  m.allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(m.packets);
  return m;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  // Strips --trace-perfetto=<file> / --profile / --telemetry-out=<dir>
  // before the positional scale argument is read.
  sdr::bench::TelemetrySession telemetry(&argc, argv);
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  auto scaled = [scale](int n, int floor_n) {
    const int v = static_cast<int>(static_cast<double>(n) * scale);
    return v < floor_n ? floor_n : v;
  };

  std::printf("data-path benchmark: end-to-end packets/s and allocs/packet "
              "(scale %.2f)\n\n", scale);

  // Warmup floors: every workload's warmup must visit its full slot /
  // window table at least once so pools and rings reach their high-water
  // capacity before measurement. The smoke-scale (CI) run then shows the
  // same zero-alloc steady state as the full run, and CI asserts on it.
  {
    const int iters = scaled(512, 72);
    const int warmup = std::max(iters / 8, 40);
    const sdr::Measured m = sdr::run_sdr_clean(iters, warmup, 8, 1 * sdr::MiB);
    sdr::report("sdr_clean", m);
  }
  {
    const int iters = scaled(1024, 72);
    const int warmup = std::max(iters / 8, 40);
    const sdr::Measured m = sdr::run_rc_lossy(iters, warmup, 1 * sdr::MiB);
    sdr::report("rc_lossy", m);
  }
  {
    const int iters = scaled(256, 72);
    const int warmup = std::max(iters / 8, 40);
    const sdr::Measured m = sdr::run_sdr_lossy_sr(iters, warmup, 1 * sdr::MiB);
    sdr::report("sdr_lossy_sr", m);
  }
  return 0;
}
