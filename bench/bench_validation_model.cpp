// §5.1.1 validation: "We validate simulation results against the analytical
// expectation for message completion time. The mean of 1000 samples from
// the stochastic model matches the analytical solution within 5% accuracy."
//
// This harness sweeps a grid of (message size, drop rate, scheme) points,
// compares 1000-sample stochastic means against the closed-form
// expectations, and fails if any point exceeds the 5% budget. It also
// cross-checks the O(M*p) binomial-thinning sampler against the O(M)
// direct reference sampler.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "model/ec_model.hpp"
#include "model/protocols.hpp"
#include "model/sr_model.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  constexpr std::uint64_t kSeed = 0x5A11DA7E;
  constexpr int kSamples = 1000;
  bench::figure_header("Model validation (§5.1.1)",
                       "stochastic mean (1000 samples) vs analytical "
                       "expectation, 5% budget",
                       kSeed);

  model::LinkParams link;
  link.bandwidth_bps = 400 * Gbps;
  link.rtt_s = 0.025;
  link.chunk_bytes = 64 * KiB;

  TextTable t({"scheme", "chunks", "Pdrop", "analytical", "stochastic",
               "rel err", "<=5%"});
  bool all_ok = true;
  int point = 0;

  auto validate = [&](model::Scheme scheme, std::uint64_t chunks, double p) {
    link.p_drop = p;
    const double analytical =
        model::expected_completion_s(scheme, link, chunks);
    Rng rng(kSeed + (point++) * 7919);
    RunningStats stats;
    for (int i = 0; i < kSamples; ++i) {
      stats.add(model::sample_completion_s(scheme, rng, link, chunks));
    }
    const double rel =
        std::abs(stats.mean() - analytical) / std::max(analytical, 1e-12);
    const bool ok = rel <= 0.05;
    all_ok = all_ok && ok;
    t.add_row({model::scheme_name(scheme), std::to_string(chunks),
               TextTable::sci(p, 0), format_seconds(analytical),
               format_seconds(stats.mean()),
               TextTable::num(rel * 100.0, 2) + "%", ok ? "yes" : "NO"});
  };

  for (const std::uint64_t chunks : {64ull, 2048ull, 65536ull}) {
    for (const double p : {1e-5, 1e-3, 1e-2}) {
      validate(model::Scheme::kSrRto, chunks, p);
      validate(model::Scheme::kSrNack, chunks, p);
      validate(model::Scheme::kEcMds, chunks, p);
    }
  }
  t.print();

  // Closed-form quantiles (Appendix A CDF inverted) vs sampled percentiles.
  {
    std::printf("\n--- analytical quantiles vs 20000-sample percentiles "
                "(SR RTO) ---\n");
    TextTable qt({"chunks", "Pdrop", "q", "analytical", "sampled",
                  "rel err"});
    bool q_ok = true;
    for (const double p : {1e-4, 1e-3}) {
      link.p_drop = p;
      const std::uint64_t chunks = 2048;
      const auto dist = model::sample_distribution(
          model::Scheme::kSrRto, link, chunks, 20000, kSeed + 5);
      const struct {
        double q;
        double sampled;
      } points[] = {{0.5, dist.p50}, {0.999, dist.p999}};
      for (const auto& pt : points) {
        const double analytic = model::sr_completion_quantile(
            link, chunks, model::SrConfig{3.0}, pt.q);
        const double rel =
            std::abs(analytic - pt.sampled) / std::max(pt.sampled, 1e-12);
        q_ok = q_ok && rel < 0.10;
        qt.add_row({std::to_string(chunks), TextTable::sci(p, 0),
                    TextTable::num(pt.q, 4), format_seconds(analytic),
                    format_seconds(pt.sampled),
                    TextTable::num(rel * 100.0, 2) + "%"});
      }
    }
    qt.print();
    all_ok = all_ok && q_ok;
  }

  // Thinning sampler vs direct O(M) reference.
  {
    std::printf("\n--- fast sampler vs direct reference (SR RTO) ---\n");
    TextTable ref({"chunks", "Pdrop", "thinning mean", "direct mean",
                   "rel err"});
    bool sampler_ok = true;
    for (const double p : {1e-4, 1e-2}) {
      link.p_drop = p;
      const std::uint64_t chunks = 8192;
      Rng a(kSeed), b(kSeed * 31);
      RunningStats fast, direct;
      for (int i = 0; i < 2000; ++i) {
        fast.add(model::sr_sample_completion_s(a, link, chunks));
        direct.add(model::sr_sample_completion_direct_s(b, link, chunks));
      }
      const double rel =
          std::abs(fast.mean() - direct.mean()) / direct.mean();
      sampler_ok = sampler_ok && rel < 0.03;
      ref.add_row({std::to_string(chunks), TextTable::sci(p, 0),
                   format_seconds(fast.mean()),
                   format_seconds(direct.mean()),
                   TextTable::num(rel * 100.0, 2) + "%"});
    }
    ref.print();
    all_ok = all_ok && sampler_ok;
  }

  std::printf("\nvalidation %s\n", all_ok ? "PASSED" : "FAILED");
  return all_ok ? 0 : 1;
}
