// §5.1.1 validation: "We validate simulation results against the analytical
// expectation for message completion time. The mean of 1000 samples from
// the stochastic model matches the analytical solution within 5% accuracy."
//
// This harness sweeps a grid of (message size, drop rate, scheme) points,
// compares 1000-sample stochastic means against the closed-form
// expectations, and fails if any point exceeds the 5% budget. It also
// cross-checks the O(M*p) binomial-thinning sampler against the O(M)
// direct reference sampler.
//
// The main validation lattice runs on the sweep engine (`--jobs=N`); each
// point's sampler is seeded with trial.seed() = derive_seed(kSeed, index),
// which depends only on the grid cell — never on thread count or order —
// so results are bit-identical at every job count.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "model/ec_model.hpp"
#include "model/protocols.hpp"
#include "model/sr_model.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

namespace {

model::Scheme scheme_from(const std::string& name) {
  if (name == "SR RTO") return model::Scheme::kSrRto;
  if (name == "SR NACK") return model::Scheme::kSrNack;
  return model::Scheme::kEcMds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  constexpr std::uint64_t kSeed = 0x5A11DA7E;
  constexpr int kSamples = 1000;
  bench::figure_header("Model validation (§5.1.1)",
                       "stochastic mean (1000 samples) vs analytical "
                       "expectation, 5% budget",
                       kSeed);

  model::LinkParams link;
  link.bandwidth_bps = 400 * Gbps;
  link.rtt_s = 0.025;
  link.chunk_bytes = 64 * KiB;

  // Axis order mirrors the original nested loops: chunks, then drop rate,
  // then scheme innermost.
  sweep::ParamGrid grid;
  grid.axis_i64("chunks", {64, 2048, 65536})
      .axis_f64("p_drop", {1e-5, 1e-3, 1e-2})
      .axis_str("scheme", {model::scheme_name(model::Scheme::kSrRto),
                           model::scheme_name(model::Scheme::kSrNack),
                           model::scheme_name(model::Scheme::kEcMds)});

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(kSeed), [link](sweep::Trial& trial) {
        model::LinkParams l = link;
        l.p_drop = trial.params().f64("p_drop");
        const auto chunks =
            static_cast<std::uint64_t>(trial.params().i64("chunks"));
        const model::Scheme scheme =
            scheme_from(trial.params().str("scheme"));
        const double analytical =
            model::expected_completion_s(scheme, l, chunks);
        Rng rng(trial.seed());
        RunningStats stats;
        for (int i = 0; i < kSamples; ++i) {
          stats.add(model::sample_completion_s(scheme, rng, l, chunks));
        }
        const double rel = std::abs(stats.mean() - analytical) /
                           std::max(analytical, 1e-12);
        trial.record("analytical_s", analytical);
        trial.record("stochastic_s", stats.mean());
        trial.record("rel_err", rel);
        trial.record_flag("within_budget", rel <= 0.05);
      });
  sweep_cli.finish(result);

  TextTable t({"scheme", "chunks", "Pdrop", "analytical", "stochastic",
               "rel err", "<=5%"});
  bool all_ok = result.failures() == 0;
  for (const sweep::TrialRecord& rec : result.trials) {
    const sweep::ParamPoint point = grid.point(rec.index);
    const double rel = rec.f64("rel_err", 1.0);
    const bool ok = rel <= 0.05;
    all_ok = all_ok && ok;
    t.add_row({point.str("scheme"), std::to_string(point.i64("chunks")),
               TextTable::sci(point.f64("p_drop"), 0),
               format_seconds(rec.f64("analytical_s")),
               format_seconds(rec.f64("stochastic_s")),
               TextTable::num(rel * 100.0, 2) + "%", ok ? "yes" : "NO"});
  }
  t.print();

  // Closed-form quantiles (Appendix A CDF inverted) vs sampled percentiles.
  {
    std::printf("\n--- analytical quantiles vs 20000-sample percentiles "
                "(SR RTO) ---\n");
    TextTable qt({"chunks", "Pdrop", "q", "analytical", "sampled",
                  "rel err"});
    bool q_ok = true;
    for (const double p : {1e-4, 1e-3}) {
      link.p_drop = p;
      const std::uint64_t chunks = 2048;
      const auto dist = model::sample_distribution(
          model::Scheme::kSrRto, link, chunks, 20000, kSeed + 5);
      const struct {
        double q;
        double sampled;
      } points[] = {{0.5, dist.p50}, {0.999, dist.p999}};
      for (const auto& pt : points) {
        const double analytic = model::sr_completion_quantile(
            link, chunks, model::SrConfig{3.0}, pt.q);
        const double rel =
            std::abs(analytic - pt.sampled) / std::max(pt.sampled, 1e-12);
        q_ok = q_ok && rel < 0.10;
        qt.add_row({std::to_string(chunks), TextTable::sci(p, 0),
                    TextTable::num(pt.q, 4), format_seconds(analytic),
                    format_seconds(pt.sampled),
                    TextTable::num(rel * 100.0, 2) + "%"});
      }
    }
    qt.print();
    all_ok = all_ok && q_ok;
  }

  // Thinning sampler vs direct O(M) reference.
  {
    std::printf("\n--- fast sampler vs direct reference (SR RTO) ---\n");
    TextTable ref({"chunks", "Pdrop", "thinning mean", "direct mean",
                   "rel err"});
    bool sampler_ok = true;
    for (const double p : {1e-4, 1e-2}) {
      link.p_drop = p;
      const std::uint64_t chunks = 8192;
      Rng a(kSeed), b(kSeed * 31);
      RunningStats fast, direct;
      for (int i = 0; i < 2000; ++i) {
        fast.add(model::sr_sample_completion_s(a, link, chunks));
        direct.add(model::sr_sample_completion_direct_s(b, link, chunks));
      }
      const double rel =
          std::abs(fast.mean() - direct.mean()) / direct.mean();
      sampler_ok = sampler_ok && rel < 0.03;
      ref.add_row({std::to_string(chunks), TextTable::sci(p, 0),
                   format_seconds(fast.mean()),
                   format_seconds(direct.mean()),
                   TextTable::num(rel * 100.0, 2) + "%"});
    }
    ref.print();
    all_ok = all_ok && sampler_ok;
  }

  std::printf("\nvalidation %s\n", all_ok ? "PASSED" : "FAILED");
  return all_ok ? 0 : 1;
}
