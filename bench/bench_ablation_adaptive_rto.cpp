// Ablation: static vs adaptive (RFC 6298-style) retransmission timeout in
// the executable SR protocol (paper §4.1.1 lists RTO tuning among the SR
// extensions SDR enables). A deployment whose RTT estimate is wrong by an
// order of magnitude — common when one endpoint serves peers at very
// different distances (§2.1: "a single endpoint might communicate with
// remote endpoints at varying distances") — pays the misconfiguration on
// every drop; the adaptive sender learns the channel in one message.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct Outcome {
  double total_s{0.0};
  std::uint64_t retransmissions{0};
  double learned_rto_s{0.0};
};

Outcome run(double true_rtt_s, double configured_rto_s, bool adaptive,
            double p_drop, int messages) {
  sim::Simulator sim;
  bench::TelemetrySession::attach(sim);
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = rtt_to_km(true_rtt_s);
  cfg.seed = 4711;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, p_drop, 0.0);
  core::Context ctx_a(*nics.a, core::DevAttr{});
  core::Context ctx_b(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 16 * KiB;
  attr.max_msg_size = 8 * MiB;
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());
  reliability::ControlLink ca(*nics.a), cb(*nics.b);
  ca.connect(nics.b->id(), cb.qp_number());
  cb.connect(nics.a->id(), ca.qp_number());

  reliability::LinkProfile profile;
  profile.bandwidth_bps = cfg.bandwidth_bps;
  profile.rtt_s = true_rtt_s;
  profile.mtu = attr.mtu;
  profile.chunk_bytes = attr.chunk_size;

  reliability::SrProtoConfig config;
  config.rto_s = configured_rto_s;
  config.adaptive_rto = adaptive;
  config.ack_interval_s = true_rtt_s / 4.0;
  reliability::SrSender sender(sim, *qa, ca, profile, config);
  reliability::SrReceiver receiver(sim, *qb, cb, profile, config);

  const std::size_t bytes = 4 * MiB;
  std::vector<std::uint8_t> src(bytes, 0x42), dst(bytes);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  for (int m = 0; m < messages; ++m) {
    bool ok = false;
    receiver.expect(dst.data(), bytes, mr,
                    [&](const Status& s) { ok = s.is_ok(); });
    sender.write(src.data(), bytes, [](const Status&) {});
    sim.run();
    if (!ok || std::memcmp(dst.data(), src.data(), bytes) != 0) {
      std::fprintf(stderr, "transfer failed\n");
      break;
    }
  }
  Outcome out;
  out.total_s = sim.now().seconds();
  out.retransmissions = sender.stats().retransmissions;
  out.learned_rto_s = sender.rtt_estimator().rto_s();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::figure_header("Ablation: static vs adaptive RTO (§4.1.1)",
                       "8 x 4 MiB messages, 1%% packet drop; the configured "
                       "RTO assumes a 3750 km peer but the actual peer is "
                       "100 km away (1 ms RTT)");

  const double true_rtt = 0.001;        // actual channel
  const double configured_rto = 0.075;  // tuned for a 25 ms-RTT deployment
  const double p_drop = 0.01;
  const int messages = 8;

  TextTable t({"RTO policy", "total time", "retransmissions",
               "final sender RTO"});
  const Outcome fixed =
      run(true_rtt, configured_rto, /*adaptive=*/false, p_drop, messages);
  const Outcome learned =
      run(true_rtt, configured_rto, /*adaptive=*/true, p_drop, messages);
  t.add_row({"static 75 ms", format_seconds(fixed.total_s),
             std::to_string(fixed.retransmissions), "75 ms (fixed)"});
  t.add_row({"adaptive (RFC 6298)", format_seconds(learned.total_s),
             std::to_string(learned.retransmissions),
             format_seconds(learned.learned_rto_s)});
  t.print();
  std::printf("\nspeedup from learning the channel: %.1fx — per-connection "
              "RTO provisioning is exactly the per-deployment tuning the "
              "SDR architecture is built to enable.\n",
              fixed.total_s / learned.total_s);
  return learned.total_s < fixed.total_s ? 0 : 1;
}
