// Figure 16: SDR packet-rate scaling versus the number of DPA threads used
// for receive-side offloading, against next-generation Tbit/s link rates.
//
// Paper findings to reproduce: near-linear scaling from 4 to 32 threads;
// 32 threads (1/8 of DPA capacity) reach ~1.6 Tbit/s-equivalent packet
// rates and 128 threads approach 3.2 Tbit/s at 4 KiB MTU / 64 KiB chunks.
//
// The per-CQE cost is measured on this host; rates for N threads follow
// the multi-channel scaling model (disjoint rings, no shared state on the
// hot path — verified live for the core counts this host has). The scaling
// grid itself runs on the sweep engine (`--jobs=N`); the live-engine
// grounding section stays serial because it owns the machine's cores.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "dpa/calibrate.hpp"
#include "dpa/engine.hpp"
#include "sweep/sweep.hpp"

using namespace sdr;  // NOLINT

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  bench::figure_header("Figure 16",
                       "packet-rate scaling vs DPA receive threads "
                       "(4 KiB MTU, 64 KiB chunks)");

  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = 16 * MiB;
  attr.max_inflight = 16;

  const dpa::Calibration host_cal = dpa::calibrate(attr, 1u << 20);
  const dpa::Calibration cal = dpa::dpa_anchored(host_cal);
  std::printf("measured per-CQE cost on this host: %.1f ns; DPA-anchored "
              "cost (paper §5.4.2): %.1f ns\n\n",
              host_cal.ns_per_cqe, cal.ns_per_cqe);

  const double mtu_bits = 4096.0 * 8.0;
  const double targets[] = {400e9, 800e9, 1.6e12, 3.2e12};
  const std::vector<std::int64_t> thread_counts = {4, 8, 16, 32, 64, 128};

  sweep::ParamGrid grid;
  grid.axis_i64("threads", thread_counts);
  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xF16016), [&cal](sweep::Trial& trial) {
        const auto threads =
            static_cast<std::size_t>(trial.params().i64("threads"));
        trial.record("pps", dpa::achievable_packet_rate(cal, threads));
      });
  sweep_cli.finish(result);

  TextTable t({"DPA threads", "packet rate", "equivalent bandwidth",
               "saturates"});
  double rate_at_32 = 0.0, rate_at_128 = 0.0;
  std::size_t trial_index = 0;
  for (const std::int64_t threads : thread_counts) {
    const double pps = result.at(trial_index++).f64("pps");
    const double bps = pps * mtu_bits;
    const char* sat = "-";
    for (const double target : targets) {
      if (pps >= dpa::wire_packet_rate(target, 4096)) {
        sat = target >= 3.2e12   ? "3.2 Tbit/s"
              : target >= 1.6e12 ? "1.6 Tbit/s"
              : target >= 800e9  ? "800 Gbit/s"
                                 : "400 Gbit/s";
      }
    }
    t.add_row({std::to_string(threads),
               TextTable::num(pps / 1e6, 4) + " Mpps", format_rate(bps),
               sat});
    if (threads == 32) rate_at_32 = bps;
    if (threads == 128) rate_at_128 = bps;
  }
  t.print();

  std::printf("\nlinearity grounding (live engine, disjoint rings):\n");
  {
    core::MessageTable table(attr);
    table.arm(0, 0, attr.max_msg_size);
    const core::ImmCodec codec(attr.imm);
    for (const std::size_t workers : {1u, 2u}) {
      dpa::Engine engine(table, workers, 1 << 12);
      engine.start();
      const std::size_t total = 1u << 21;
      const auto begin = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < total; ++i) {
        dpa::RawCqe cqe{
            codec.encode(0, static_cast<std::uint32_t>(
                                i % attr.max_packets_per_msg()),
                         0),
            0};
        while (!engine.ring(i % workers).push(cqe)) {
        }
      }
      engine.wait_idle();
      const auto end = std::chrono::steady_clock::now();
      engine.stop();
      const double pps = static_cast<double>(total) /
                         std::chrono::duration<double>(end - begin).count();
      std::printf("  %zu worker(s): %.2f M CQE/s\n", workers, pps / 1e6);
    }
  }

  const bool ok = rate_at_32 >= 0.8e12 && rate_at_128 >= 2.5e12 &&
                  result.failures() == 0;
  std::printf("\nshape check: 32 threads reach Tbit/s-class rates and 128 "
              "threads approach 3.2 Tbit/s: %s (32T=%s, 128T=%s)\n",
              ok ? "reproduced" : "MISSING",
              format_rate(rate_at_32).c_str(),
              format_rate(rate_at_128).c_str());
  return ok ? 0 : 1;
}
