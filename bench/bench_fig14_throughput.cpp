// Figure 14: SDR throughput with 16 in-flight Writes and 64 KiB bitmap
// chunks on a 400 Gbit/s link.
//   Left panel:  throughput vs message size (SDR vs RC Writes baseline).
//   Right panel: receive-thread scaling for 16 MiB messages.
// Paper findings to reproduce: SDR saturates line rate from ~512 KiB
// upward needing ~20 of 256 DPA threads; below 512 KiB it trails RC Writes
// because each receive repost pays slot reallocation (mkey update + bitmap
// cleanup).
//
// Method (DESIGN.md §1): the per-CQE and per-repost costs of the real
// backend code are MEASURED on this host (single core), then fed into the
// multi-channel scaling model; a live multi-worker engine run grounds the
// calibration.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "dpa/calibrate.hpp"
#include "dpa/engine.hpp"
#include "sdr/message_table.hpp"

using namespace sdr;  // NOLINT

namespace {

core::QpAttr fig14_attr() {
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = 16 * MiB;
  attr.max_inflight = 16;
  attr.generations = 4;
  return attr;
}

/// Live engine run: stream `total` completions through `workers` rings and
/// measure the aggregate processed rate on this host.
double measured_engine_rate(std::size_t workers, std::size_t total) {
  core::QpAttr attr = fig14_attr();
  core::MessageTable table(attr);
  table.arm(0, 0, attr.max_msg_size);
  dpa::Engine engine(table, workers, 1 << 12);
  const core::ImmCodec codec(attr.imm);
  engine.start();
  const auto begin = std::chrono::steady_clock::now();
  const std::size_t packets = attr.max_packets_per_msg();
  for (std::size_t i = 0; i < total; ++i) {
    const auto pkt = static_cast<std::uint32_t>(i % packets);
    const std::size_t w = i % workers;
    dpa::RawCqe cqe{codec.encode(0, pkt, 0), 0};
    while (!engine.ring(w).push(cqe)) {
    }
  }
  engine.wait_idle();
  const auto end = std::chrono::steady_clock::now();
  engine.stop();
  return static_cast<double>(total) /
         std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  const core::QpAttr attr = fig14_attr();
  bench::figure_header("Figure 14",
                       "SDR throughput: message-size sweep and DPA thread "
                       "scaling (400 Gbit/s, 16 in-flight, 64 KiB chunks)");

  std::printf("calibrating the receive backend on this host...\n");
  const dpa::Calibration host_cal = dpa::calibrate(attr, 1u << 20);
  const dpa::Calibration cal = dpa::dpa_anchored(host_cal);
  std::printf("  host: per-CQE %.1f ns, per-repost %.1f ns\n"
              "  DPA-anchored (paper §5.4.2, 1 thread ~ 0.94 Mpps): per-CQE "
              "%.1f ns, per-repost %.1f ns\n\n",
              host_cal.ns_per_cqe, host_cal.ns_per_repost, cal.ns_per_cqe,
              cal.ns_per_repost);

  const double line = 400e9;
  constexpr std::size_t kThreads = 20;  // "20 of the 256 available"

  {
    std::printf("--- left: throughput vs message size (%zu rx threads) ---\n",
                kThreads);
    TextTable t({"message", "SDR", "RC Writes (baseline)", "fraction of "
                 "line rate"});
    bool saturates_at_512k = false;
    bool trails_below = false;
    for (const std::size_t kib : {4u, 16u, 64u, 128u, 256u, 512u, 1024u,
                                  4096u, 16384u, 65536u, 262144u, 1048576u}) {
      const std::size_t bytes = static_cast<std::size_t>(kib) * KiB;
      const double sdr_bps =
          dpa::modeled_throughput_bps(cal, attr, line, bytes, kThreads);
      // RC Writes baseline: reliability lives in the ASIC pipeline with no
      // software repost on the receive path — line rate at these sizes.
      const double rc_bps = line;
      t.add_row({format_bytes(bytes), format_rate(sdr_bps),
                 format_rate(rc_bps),
                 TextTable::num(sdr_bps / line * 100.0, 3) + "%"});
      if (bytes == 512 * KiB && sdr_bps > 0.9 * line) {
        saturates_at_512k = true;
      }
      if (bytes <= 64 * KiB && sdr_bps < 0.8 * rc_bps) {
        trails_below = true;
      }
    }
    t.print();
    std::printf("shape: near-saturation from 512 KiB (%s); SDR trails RC "
                "below 512 KiB due to repost overhead (%s)\n\n",
                saturates_at_512k ? "reproduced" : "MISSING",
                trails_below ? "reproduced" : "MISSING");
  }

  {
    std::printf("--- right: thread scaling at 16 MiB messages ---\n");
    TextTable t({"rx threads", "modeled throughput", "fraction of line"});
    for (const std::size_t workers : {1u, 2u, 4u, 8u, 16u, 20u, 32u}) {
      const double bps =
          dpa::modeled_throughput_bps(cal, attr, line, 16 * MiB, workers);
      t.add_row({std::to_string(workers), format_rate(bps),
                 TextTable::num(bps / line * 100.0, 3) + "%"});
    }
    t.print();
  }

  {
    std::printf("\n--- grounding: live multi-worker engine on this host "
                "(single physical core) ---\n");
    TextTable t({"workers", "measured CQE rate", "x single worker"});
    const double base = measured_engine_rate(1, 1u << 21);
    t.add_row({"1", TextTable::num(base / 1e6, 3) + " M/s", "1.00x"});
    const double two = measured_engine_rate(2, 1u << 21);
    t.add_row({"2", TextTable::num(two / 1e6, 3) + " M/s",
               bench::speedup_cell(two / base)});
    t.print();
    std::printf("(scaling beyond the host's core count is projected by the "
                "calibration model above; the paper measures near-linear "
                "scaling on 256 real DPA threads)\n");
  }
  return 0;
}
