// Fleet scenario bench: hundreds of endpoints across a multi-DC fabric,
// thousands of concurrent messages, all three reliability schemes on a
// resource-modeled NIC (PCIe descriptor/doorbell costs, SQ backpressure,
// per-verb token buckets — src/verbs/nic_model.hpp).
//
// Two sections:
//   * a scheme x loss x distance sweep grid (runs on the sweep engine,
//     `--jobs=N`, bit-identical output at every job count) reporting fleet
//     goodput, Jain fairness across sender endpoints, the completion-
//     latency tail (p50/p99/p999) and the order-sensitive completion
//     digest per cell;
//   * one headline fleet per scheme at the default operating point
//     (1500 km, Pdrop 1e-4), wall-clock timed with the operator-new hook,
//     emitting one machine-readable line each:
//
//   BENCH_JSON {"bench":"fleet","workload":"sr"|"ec"|"rc",...,
//               "allocs_per_message":...,"commit":...}
//
// The fleet engine allocates per message by design (protocol send/recv
// state, per-connection arenas are set up beforehand); the figure is
// reported honestly, not forced to zero. Scale run length with argv[1]
// (default 1.0; CI smoke uses 0.25 which shrinks the fleet, not the
// semantics).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "fleet/fleet.hpp"
#include "sdr/version.hpp"
#include "sweep/sweep.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same hook as bench_datapath / bench_simcore).
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace sdr;  // NOLINT

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fleet::FleetConfig scaled_config(double scale) {
  fleet::FleetConfig cfg = fleet::FleetConfig::defaults();
  if (scale < 1.0) {
    const auto shrink = [scale](std::size_t v, std::size_t floor) {
      const std::size_t s =
          static_cast<std::size_t>(static_cast<double>(v) * scale);
      return s < floor ? floor : s;
    };
    cfg.endpoints_per_dc = shrink(cfg.endpoints_per_dc, 4);
    cfg.messages_per_connection = shrink(cfg.messages_per_connection, 4);
    cfg.collective_iterations = 1;
  }
  return cfg;
}

fleet::Scheme scheme_of(std::int64_t index) {
  switch (index) {
    case 0: return fleet::Scheme::kSr;
    case 1: return fleet::Scheme::kEc;
    default: return fleet::Scheme::kRc;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetrySession telemetry(&argc, argv);
  bench::SweepCli sweep_cli(&argc, argv);
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  bench::figure_header(
      "Fleet", "multi-DC fleet goodput, fairness and completion-latency "
               "tail vs scheme x loss x distance");

  const std::vector<std::int64_t> schemes = {0, 1, 2};  // sr, ec, rc
  const std::vector<double> drops = {1e-5, 1e-3};
  const std::vector<double> kms = {500.0, 3750.0};

  sweep::ParamGrid grid;
  grid.axis_i64("scheme", schemes).axis_f64("p_drop", drops)
      .axis_f64("km", kms);

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sweep_cli.options(0xF1EE7), [scale](sweep::Trial& trial) {
        fleet::FleetConfig cfg = scaled_config(scale);
        cfg.scheme = scheme_of(trial.params().i64("scheme"));
        cfg.p_drop = trial.params().f64("p_drop");
        cfg.distance_km = trial.params().f64("km");
        cfg.seed = trial.seed();
        const fleet::FleetResult r = fleet::run_fleet(cfg);
        trial.record("connections",
                     static_cast<std::int64_t>(r.connections));
        trial.record("posted", static_cast<std::int64_t>(r.messages_posted));
        trial.record("completed",
                     static_cast<std::int64_t>(r.messages_completed));
        trial.record("failed",
                     static_cast<std::int64_t>(r.messages_failed));
        trial.record("peak_concurrent",
                     static_cast<std::int64_t>(r.peak_concurrent));
        trial.record("retransmissions",
                     static_cast<std::int64_t>(r.retransmissions));
        trial.record("trunk_drops",
                     static_cast<std::int64_t>(r.trunk_drops));
        trial.record("goodput_gbps", r.fleet_goodput_gbps);
        trial.record("jain", r.jain_fairness);
        trial.record("p50_ms", r.p50_ms);
        trial.record("p99_ms", r.p99_ms);
        trial.record("p999_ms", r.p999_ms);
        trial.record_flag("quiesced", r.quiesced);
        // Split the 64-bit digest into two exact-in-double 32-bit halves.
        trial.record("digest_hi",
                     static_cast<std::int64_t>(r.digest >> 32));
        trial.record("digest_lo",
                     static_cast<std::int64_t>(r.digest & 0xFFFFFFFFu));
      });
  sweep_cli.finish(result);

  bool all_ok = true;
  bool ec_tail_wins = false;
  double sr_p999_worst = 0.0;
  double ec_p999_worst = 0.0;
  std::size_t trial_index = 0;
  for (const std::int64_t s : schemes) {
    std::printf("\n--- scheme %s ---\n",
                fleet::scheme_name(scheme_of(s)));
    TextTable t({"Pdrop", "distance", "completed", "peak", "goodput",
                 "Jain", "p50", "p99", "p999", "digest"});
    for (const double p : drops) {
      for (const double km : kms) {
        const sweep::TrialRecord& rec = result.at(trial_index++);
        if (!rec.ok) {
          all_ok = false;
          continue;
        }
        // record() stored exact-in-double integers; f64 is the only
        // TrialRecord accessor.
        const std::uint64_t digest =
            (static_cast<std::uint64_t>(rec.f64("digest_hi")) << 32) |
            static_cast<std::uint64_t>(rec.f64("digest_lo"));
        const auto completed = static_cast<long long>(rec.f64("completed"));
        const auto posted = static_cast<long long>(rec.f64("posted"));
        char pd[16], dist[16], comp[32], gp[24], jain[16], p50[16], p99[16],
            p999[16], dg[24];
        std::snprintf(pd, sizeof(pd), "%.0e", p);
        std::snprintf(dist, sizeof(dist), "%5.0f km", km);
        std::snprintf(comp, sizeof(comp), "%lld/%lld", completed, posted);
        std::snprintf(gp, sizeof(gp), "%.2f Gbit/s",
                      rec.f64("goodput_gbps"));
        std::snprintf(jain, sizeof(jain), "%.3f", rec.f64("jain"));
        std::snprintf(p50, sizeof(p50), "%.1f ms", rec.f64("p50_ms"));
        std::snprintf(p99, sizeof(p99), "%.1f ms", rec.f64("p99_ms"));
        std::snprintf(p999, sizeof(p999), "%.1f ms", rec.f64("p999_ms"));
        std::snprintf(dg, sizeof(dg), "%016llx",
                      static_cast<unsigned long long>(digest));
        t.add_row({pd, dist, comp,
                   std::to_string(
                       static_cast<long long>(rec.f64("peak_concurrent"))),
                   gp, jain, p50, p99, p999, dg});
        if ((completed != posted || rec.f64("failed") != 0.0) &&
            scheme_of(s) != fleet::Scheme::kRc) {
          // SDR schemes must finish every message within the horizon, and
          // no receiver may give up (EC global-timeout abort); RC may
          // legitimately stop after retry exhaustion.
          all_ok = false;
        }
        // The paper's tail story: at the hardest cell (max loss x max
        // distance) EC's proactive redundancy beats SR's reactive
        // retransmission in the p999.
        if (p == drops.back() && km == kms.back()) {
          if (scheme_of(s) == fleet::Scheme::kSr) {
            sr_p999_worst = rec.f64("p999_ms");
          }
          if (scheme_of(s) == fleet::Scheme::kEc) {
            ec_p999_worst = rec.f64("p999_ms");
          }
        }
      }
    }
    t.print();
  }
  // 5% tolerance: at smoke scales too few messages hit a loss for the tail
  // to separate; at full scale SR's RTO retransmissions dominate the p999.
  ec_tail_wins =
      ec_p999_worst > 0.0 && ec_p999_worst <= sr_p999_worst * 1.05;

  // ---- headline runs: default operating point, wall-clock + alloc hook ----
  std::printf("\n--- headline (defaults: 1500 km, Pdrop 1e-4, NIC model on) "
              "---\n");
  bool headline_ok = true;
  std::uint64_t min_peak = ~std::uint64_t{0};
  for (const std::int64_t s : schemes) {
    fleet::FleetConfig cfg = scaled_config(scale);
    cfg.scheme = scheme_of(s);
    const std::uint64_t allocs_before = g_allocs.load();
    const double t0 = now_s();
    const fleet::FleetResult r = fleet::run_fleet(cfg);
    const double wall = now_s() - t0;
    const std::uint64_t allocs = g_allocs.load() - allocs_before;
    const double allocs_per_message =
        r.messages_completed > 0
            ? static_cast<double>(allocs) /
                  static_cast<double>(r.messages_completed)
            : 0.0;
    if (r.peak_concurrent < min_peak) min_peak = r.peak_concurrent;
    std::printf("%-3s %4llu endpoints  %5llu msgs  peak %5llu  "
                "%7.2f Gbit/s  Jain %.3f  p99 %7.1f ms  %s\n",
                fleet::scheme_name(cfg.scheme),
                static_cast<unsigned long long>(r.endpoints),
                static_cast<unsigned long long>(r.messages_completed),
                static_cast<unsigned long long>(r.peak_concurrent),
                r.fleet_goodput_gbps, r.jain_fairness, r.p99_ms,
                r.quiesced ? "quiesced" : "HORIZON CUTOFF");
    std::printf(
        "BENCH_JSON {\"bench\":\"fleet\",\"workload\":\"%s\","
        "\"endpoints\":%llu,\"connections\":%llu,\"qps\":%llu,"
        "\"posted\":%llu,\"completed\":%llu,\"failed\":%llu,"
        "\"peak_concurrent\":%llu,"
        "\"goodput_gbps\":%.6f,\"jain\":%.6f,\"p50_ms\":%.6f,"
        "\"p99_ms\":%.6f,\"p999_ms\":%.6f,\"retransmissions\":%llu,"
        "\"trunk_drops\":%llu,\"quiesced\":%s,\"digest\":\"%016llx\","
        "\"wall_s\":%.6f,\"allocs_per_message\":%.3f,\"commit\":\"%s\"}\n",
        fleet::scheme_name(cfg.scheme),
        static_cast<unsigned long long>(r.endpoints),
        static_cast<unsigned long long>(r.connections),
        static_cast<unsigned long long>(r.qps_created),
        static_cast<unsigned long long>(r.messages_posted),
        static_cast<unsigned long long>(r.messages_completed),
        static_cast<unsigned long long>(r.messages_failed),
        static_cast<unsigned long long>(r.peak_concurrent),
        r.fleet_goodput_gbps, r.jain_fairness, r.p50_ms, r.p99_ms, r.p999_ms,
        static_cast<unsigned long long>(r.retransmissions),
        static_cast<unsigned long long>(r.trunk_drops),
        r.quiesced ? "true" : "false",
        static_cast<unsigned long long>(r.digest), wall, allocs_per_message,
        kGitCommit);
    if (cfg.scheme != fleet::Scheme::kRc &&
        (r.messages_completed != r.messages_posted ||
         r.messages_failed != 0 || !r.quiesced)) {
      headline_ok = false;
    }
    if (r.unknown_qp_packets != 0 || r.unroutable_packets != 0) {
      headline_ok = false;
    }
    if (r.payload_live_slots != 0) headline_ok = false;
  }

  const bool scale_target_met =
      scale < 1.0 || min_peak >= 2000;  // >=2000 concurrent at full scale
  std::printf("\nshape check: EC p999 <= SR p999 at max loss x distance: "
              "%s\n",
              ec_tail_wins ? "reproduced" : "MISSING");
  std::printf("scale check: peak concurrent >= 2000 at full scale: %s\n",
              scale < 1.0 ? "skipped (scaled run)"
                          : (scale_target_met ? "met" : "MISSING"));
  return (all_ok && headline_ok && ec_tail_wins && scale_target_met &&
          result.failures() == 0)
             ? 0
             : 1;
}
