// Simulator-core microbenchmark: the canonical throughput probe for the
// discrete-event engine every paper figure runs on (Figs 3, 9, 10, 13-16
// are all parameter sweeps over this core, so events/sec here is
// experiment turnaround time there).
//
// Three workloads:
//   * event_churn      — self-rescheduling events, pure schedule/pop/fire.
//   * timer_churn      — schedule+cancel pairs, the SR/RC retransmission
//                        timer pattern (armed, then disarmed by an ACK).
//   * packet_delivery  — Channel::send with drops, duplication and
//                        reordering, the hot path of every link sweep.
//
// Besides wall-clock rates it reports heap allocations per event/packet in
// steady state (a global operator-new counter), the "zero-allocation"
// regression check. Each workload emits one machine-readable line:
//
//   BENCH_JSON {"bench":"simcore","workload":...,...}
//
// These lines are the simulator's perf trajectory: append them (with the
// commit id) to bench/trajectory.jsonl when a PR touches the event core.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sdr/version.hpp"
#include "sim/channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. Every operator-new in the process bumps it;
// workloads snapshot it around their steady-state phase.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sdr::sim {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Workload 1: self-rescheduling event churn.
// ---------------------------------------------------------------------------
struct Ticker {
  Simulator& sim;
  Rng& rng;
  std::uint64_t* budget;  // shared countdown across all tickers
  std::uint64_t fired{0};

  void tick() {
    ++fired;
    if (*budget == 0) return;
    --*budget;
    sim.schedule(SimTime{static_cast<std::int64_t>(1 + rng.next_below(64))},
                 [this] { tick(); });
  }
};

void run_event_churn(std::uint64_t total_events) {
  Simulator sim;
  Rng rng(42);
  std::uint64_t budget = total_events;
  constexpr std::size_t kInFlight = 1024;
  std::vector<std::unique_ptr<Ticker>> tickers;
  tickers.reserve(kInFlight);
  for (std::size_t i = 0; i < kInFlight; ++i) {
    tickers.push_back(std::unique_ptr<Ticker>(new Ticker{sim, rng, &budget}));
  }

  // Warmup: seed the in-flight set and let pools/queues reach capacity.
  for (auto& t : tickers) t->tick();
  sim.run_until(sim.now() + SimTime{1000});

  const std::uint64_t allocs_before = g_allocs.load();
  const double t0 = now_s();
  const std::uint64_t executed = sim.run();
  const double wall = now_s() - t0;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;

  std::printf("event_churn:      %.3e events/s  (%llu events, %.3f s, "
              "%.4f allocs/event)\n",
              static_cast<double>(executed) / wall,
              static_cast<unsigned long long>(executed), wall,
              static_cast<double>(allocs) / static_cast<double>(executed));
  std::printf("BENCH_JSON {\"bench\":\"simcore\",\"workload\":\"event_churn\","
              "\"events\":%llu,\"wall_s\":%.6f,\"events_per_sec\":%.6e,"
              "\"allocs_per_event\":%.6f,\"commit\":\"%s\"}\n",
              static_cast<unsigned long long>(executed), wall,
              static_cast<double>(executed) / wall,
              static_cast<double>(allocs) / static_cast<double>(executed),
              sdr::kGitCommit);
}

// ---------------------------------------------------------------------------
// Workload 2: schedule+cancel timer churn (retransmission timers disarmed
// by ACKs). Also the memory-boundedness probe: the seed design kept one
// tombstone bit per id ever scheduled.
// ---------------------------------------------------------------------------
void run_timer_churn(std::uint64_t pairs) {
  Simulator sim;
  std::uint64_t fired = 0;

  // Warmup.
  for (int i = 0; i < 4096; ++i) {
    const EventId id = sim.schedule(SimTime{1000000}, [&fired] { ++fired; });
    sim.cancel(id);
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const EventId id = sim.schedule(SimTime{1000000}, [&fired] { ++fired; });
    sim.cancel(id);
  }
  const double wall = now_s() - t0;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  sim.run();

  std::printf("timer_churn:      %.3e pairs/s   (%llu schedule+cancel, "
              "%.3f s, %.4f allocs/pair)\n",
              static_cast<double>(pairs) / wall,
              static_cast<unsigned long long>(pairs), wall,
              static_cast<double>(allocs) / static_cast<double>(pairs));
  std::printf("BENCH_JSON {\"bench\":\"simcore\",\"workload\":\"timer_churn\","
              "\"pairs\":%llu,\"wall_s\":%.6f,\"pairs_per_sec\":%.6e,"
              "\"allocs_per_pair\":%.6f,\"commit\":\"%s\"}\n",
              static_cast<unsigned long long>(pairs), wall,
              static_cast<double>(pairs) / wall,
              static_cast<double>(allocs) / static_cast<double>(pairs),
              sdr::kGitCommit);
}

// ---------------------------------------------------------------------------
// Workload 3: packet delivery through a lossy, duplicating, reordering
// channel — the inner loop of every link-level sweep.
// ---------------------------------------------------------------------------
void run_packet_delivery(std::uint64_t total_packets) {
  Simulator sim;
  Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 100.0;
  cfg.reorder_probability = 0.05;
  cfg.reorder_extra_delay_s = 10e-6;
  cfg.duplicate_probability = 0.02;
  cfg.seed = 7;
  Channel ch(sim, cfg, std::unique_ptr<DropModel>(new IidDrop(0.01)));
  std::uint64_t delivered = 0;
  ch.set_receiver([&delivered](Packet&&) { ++delivered; });

  constexpr std::uint64_t kBatch = 512;
  auto send_batch = [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      Packet p;
      p.bytes = 4096;
      ch.send(std::move(p));
    }
  };

  // Warmup: a few batches push the packet pool, event pool and delivery
  // FIFO ring through their worst-case batch composition (drop/reorder/dup
  // mix varies per batch, so one batch can undershoot peak occupancy).
  constexpr std::uint64_t kWarmupBatches = 4;
  for (std::uint64_t i = 0; i < kWarmupBatches; ++i) {
    send_batch();
    sim.run();
  }

  std::uint64_t sent = kWarmupBatches * kBatch;
  std::uint64_t executed = 0;
  const std::uint64_t delivered_before = delivered;
  const std::uint64_t allocs_before = g_allocs.load();
  const double t0 = now_s();
  while (sent < total_packets) {
    send_batch();
    sent += kBatch;
    executed += sim.run();
  }
  const double wall = now_s() - t0;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  const std::uint64_t measured = sent - kWarmupBatches * kBatch;

  // Delivery events are the workload's unit of work; "events_per_sec"
  // counts them so the metric stays comparable across history now that
  // batched FIFO draining collapses many deliveries into one simulator
  // firing ("firings" records how many).
  const std::uint64_t events = delivered - delivered_before;
  std::printf("packet_delivery:  %.3e pkts/s    (%llu packets, %llu events, "
              "%llu firings, %.3f s, %.4f allocs/pkt)\n",
              static_cast<double>(measured) / wall,
              static_cast<unsigned long long>(measured),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(executed), wall,
              static_cast<double>(allocs) / static_cast<double>(measured));
  std::printf(
      "BENCH_JSON {\"bench\":\"simcore\",\"workload\":\"packet_delivery\","
      "\"packets\":%llu,\"events\":%llu,\"firings\":%llu,\"delivered\":%llu,"
      "\"wall_s\":%.6f,"
      "\"sim_packets_per_sec\":%.6e,\"events_per_sec\":%.6e,"
      "\"allocs_per_packet\":%.6f,\"commit\":\"%s\"}\n",
      static_cast<unsigned long long>(measured),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(executed),
      static_cast<unsigned long long>(delivered), wall,
      static_cast<double>(measured) / wall,
      static_cast<double>(events) / wall,
      static_cast<double>(allocs) / static_cast<double>(measured),
      sdr::kGitCommit);
}

}  // namespace
}  // namespace sdr::sim

int main(int argc, char** argv) {
  // Inert unless --telemetry-out is passed; the trajectory numbers are
  // recorded with telemetry compiled in but disabled (the zero-cost path).
  sdr::bench::TelemetrySession telemetry(&argc, argv);
  // Scale factor so CI can run a quick pass (bench_simcore 0.1).
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (!(scale > 0.0)) scale = 1.0;  // garbage/zero arg would NaN the JSON
  std::printf("=====================================================\n");
  std::printf("bench_simcore — discrete-event core throughput probe\n");
  std::printf("(deterministic workloads; wall-clock rates machine-local)\n");
  std::printf("=====================================================\n");
  sdr::sim::run_event_churn(static_cast<std::uint64_t>(4e6 * scale));
  sdr::sim::run_timer_churn(static_cast<std::uint64_t>(4e6 * scale));
  sdr::sim::run_packet_delivery(static_cast<std::uint64_t>(2e6 * scale));
  return 0;
}
